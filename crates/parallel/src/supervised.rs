//! Supervised parallel SpMV: watchdog, graceful degradation, self-healing.
//!
//! The borrowed-job [`crate::pool::WorkerPool`] is the *fast* path: zero
//! allocation per dispatch, but a live straggler can never be abandoned —
//! the dispatched closure borrows the caller's stack, so `run` must wait
//! for every worker it woke (its watchdog can only take over work from
//! threads that *died*). This module is the *resilient* path: everything a
//! worker touches is owned by an `Arc`'d per-call state, so the caller may
//! walk away from a wedged worker without any dangling borrow. That buys
//! the full fault model:
//!
//! * **worker panic** — caught on the worker, reported, and the chunk is
//!   re-executed serially by the caller (no deadline wait);
//! * **worker death** (thread terminated without finishing) — detected at
//!   the deadline, chunk re-executed serially, worker respawned;
//! * **worker stall** (alive but past the deadline) — the worker is
//!   *abandoned*: the caller re-executes its chunk serially, a
//!   replacement thread takes its roster slot, and the stuck thread exits
//!   on its own whenever its computation finally returns (it only holds
//!   `Arc`s, so nothing dangles);
//! * **silent chunk corruption** — optionally caught by re-executing
//!   sampled chunks serially and comparing bit patterns (the chunk kernel
//!   is deterministic, so any discrepancy is corruption, not roundoff).
//!
//! Under [`RecoveryPolicy::Degrade`] every fault above still yields a
//! **correct** result — recovery re-runs the identical chunk kernel over
//! the identical partition, so output is bit-identical to a serial run —
//! plus a [`HealthReport`] saying what happened. Under
//! [`RecoveryPolicy::FailFast`] the first fault aborts the call with a
//! typed [`PoolError`] instead (the output buffer is left untouched); the
//! executor itself stays usable either way.
//!
//! The price of resilience: `x` is copied into the call state and chunk
//! outputs are staged in per-chunk buffers before assembly into `y`
//! (workers must never hold a borrow of caller memory). Use the plain
//! `Par*` executors when raw throughput matters more than fault
//! isolation.

use crate::partition::RowPartition;
use crate::pool::watchdog_deadline;
use crate::telemetry::PoolTelemetry;
use spmv_core::csr_du::{CsrDu, DuSplit};
use spmv_core::csr_duvi::CsrDuVi;
use spmv_core::csr_vi::CsrVi;
use spmv_core::{Csr, Isa, Scalar, SpIndex};
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Chunk kernels
// ---------------------------------------------------------------------

/// A matrix pre-partitioned into independently computable row chunks.
///
/// Implementors own their matrix (`'static`, typically behind an `Arc`),
/// so a chunk computation can outlive any particular `spmv` call — the
/// property that makes stall abandonment sound. `compute` must be
/// **deterministic** (same chunk + same `x` ⇒ bit-identical output): the
/// watchdog re-executes chunks after faults and the self-check compares
/// recomputed chunks bit-for-bit.
pub trait ChunkKernel<V: Scalar>: Send + Sync + 'static {
    /// Rows of the matrix (length of `y`).
    fn nrows(&self) -> usize;
    /// Columns of the matrix (length of `x`).
    fn ncols(&self) -> usize;
    /// Number of chunks. Chunk row ranges are pairwise disjoint; rows not
    /// covered by any chunk are zeroed at assembly.
    fn nchunks(&self) -> usize;
    /// Row range `chunk` covers.
    fn chunk_rows(&self, chunk: usize) -> Range<usize>;
    /// Computes `out = (A·x)[chunk_rows(chunk)]`; `out` has exactly
    /// `chunk_rows(chunk).len()` elements, pre-zeroed.
    fn compute(&self, chunk: usize, x: &[V], out: &mut [V]);
    /// Multi-vector variant: `x` is an `ncols x k` row-major panel and
    /// `out` a `chunk_rows(chunk).len() x k` row-major panel, pre-zeroed.
    /// Must be deterministic like [`ChunkKernel::compute`], and its
    /// `k = 1` case must be bit-identical to `compute` (the supervisor
    /// routes both SpMV and SpMM recovery through this method). The
    /// default decomposes into `k` independent `compute` calls; format
    /// kernels override it with fused panels that decode each unit once.
    fn compute_block(&self, chunk: usize, x: &[V], k: usize, out: &mut [V]) {
        if k == 1 {
            self.compute(chunk, x, out);
            return;
        }
        let ncols = self.ncols();
        let rows = self.chunk_rows(chunk).len();
        let mut xv = vec![V::zero(); ncols];
        let mut yv = vec![V::zero(); rows];
        for v in 0..k {
            for c in 0..ncols {
                xv[c] = x[c * k + v];
            }
            yv.fill(V::zero());
            self.compute(chunk, &xv, &mut yv);
            for r in 0..rows {
                out[r * k + v] = yv[r];
            }
        }
    }
}

/// Row-partitioned chunks over a CSR matrix (nnz-balanced).
pub struct CsrChunks<I: SpIndex, V: Scalar> {
    matrix: Arc<Csr<I, V>>,
    partition: RowPartition,
    isa: Isa,
}

impl<I: SpIndex, V: Scalar> CsrChunks<I, V> {
    /// Partitions `matrix` into `nchunks` nnz-balanced row chunks. The
    /// kernel ISA is snapshotted here, so every chunk execution — worker,
    /// serial retry and bit-exact self-check alike — runs the same kernel.
    pub fn new(matrix: Arc<Csr<I, V>>, nchunks: usize) -> CsrChunks<I, V> {
        let partition = RowPartition::for_csr(&matrix, nchunks.max(1));
        CsrChunks { matrix, partition, isa: spmv_core::simd::selected() }
    }
}

impl<I: SpIndex, V: Scalar> ChunkKernel<V> for CsrChunks<I, V> {
    fn nrows(&self) -> usize {
        self.matrix.nrows()
    }
    fn ncols(&self) -> usize {
        self.matrix.ncols()
    }
    fn nchunks(&self) -> usize {
        self.partition.nparts()
    }
    fn chunk_rows(&self, chunk: usize) -> Range<usize> {
        self.partition.part(chunk)
    }
    fn compute(&self, chunk: usize, x: &[V], out: &mut [V]) {
        let r = self.partition.part(chunk);
        self.matrix.spmv_rows_local_isa(self.isa, r.start, r.end, x, out);
    }
    fn compute_block(&self, chunk: usize, x: &[V], k: usize, out: &mut [V]) {
        let r = self.partition.part(chunk);
        self.matrix.spmm_rows_local_isa(self.isa, r.start, r.end, x, k, out);
    }
}

/// Row-partitioned chunks over a CSR-VI matrix (nnz-balanced).
pub struct CsrViChunks<I: SpIndex = u32, V: Scalar = f64> {
    matrix: Arc<CsrVi<I, V>>,
    partition: RowPartition,
    isa: Isa,
}

impl<I: SpIndex, V: Scalar> CsrViChunks<I, V> {
    /// Partitions `matrix` into `nchunks` nnz-balanced row chunks
    /// (kernel ISA snapshotted, as on [`CsrChunks::new`]).
    pub fn new(matrix: Arc<CsrVi<I, V>>, nchunks: usize) -> CsrViChunks<I, V> {
        let partition = RowPartition::by_nnz(matrix.row_ptr(), nchunks.max(1));
        CsrViChunks { matrix, partition, isa: spmv_core::simd::selected() }
    }
}

impl<I: SpIndex, V: Scalar> ChunkKernel<V> for CsrViChunks<I, V> {
    fn nrows(&self) -> usize {
        self.matrix.nrows()
    }
    fn ncols(&self) -> usize {
        self.matrix.ncols()
    }
    fn nchunks(&self) -> usize {
        self.partition.nparts()
    }
    fn chunk_rows(&self, chunk: usize) -> Range<usize> {
        self.partition.part(chunk)
    }
    fn compute(&self, chunk: usize, x: &[V], out: &mut [V]) {
        let r = self.partition.part(chunk);
        self.matrix.spmv_rows_local_isa(self.isa, r.start, r.end, x, out);
    }
    fn compute_block(&self, chunk: usize, x: &[V], k: usize, out: &mut [V]) {
        let r = self.partition.part(chunk);
        self.matrix.spmm_rows_local_isa(self.isa, r.start, r.end, x, k, out);
    }
}

/// Ctl-stream chunks over a CSR-DU matrix (each chunk is a [`DuSplit`]).
pub struct CsrDuChunks<V: Scalar> {
    matrix: Arc<CsrDu<V>>,
    splits: Vec<DuSplit>,
    bounds: Vec<usize>,
    isa: Isa,
}

impl<V: Scalar> CsrDuChunks<V> {
    /// Plans `nchunks` nnz-balanced ctl-stream splits (possibly fewer for
    /// tiny matrices; zero for an empty one). Kernel ISA snapshotted, as
    /// on [`CsrChunks::new`].
    pub fn new(matrix: Arc<CsrDu<V>>, nchunks: usize) -> CsrDuChunks<V> {
        let splits = matrix.splits(nchunks.max(1));
        let mut bounds = vec![0usize];
        bounds.extend(splits.iter().map(|s| s.row_end));
        CsrDuChunks { matrix, splits, bounds, isa: spmv_core::simd::selected() }
    }
}

impl<V: Scalar> ChunkKernel<V> for CsrDuChunks<V> {
    fn nrows(&self) -> usize {
        self.matrix.nrows()
    }
    fn ncols(&self) -> usize {
        self.matrix.ncols()
    }
    fn nchunks(&self) -> usize {
        self.splits.len()
    }
    fn chunk_rows(&self, chunk: usize) -> Range<usize> {
        self.bounds[chunk]..self.bounds[chunk + 1]
    }
    fn compute(&self, chunk: usize, x: &[V], out: &mut [V]) {
        self.matrix.spmv_split_local_isa(self.isa, &self.splits[chunk], x, out);
    }
    fn compute_block(&self, chunk: usize, x: &[V], k: usize, out: &mut [V]) {
        self.matrix.spmm_split_local_isa(self.isa, &self.splits[chunk], x, k, out);
    }
}

/// Ctl-stream chunks over a CSR-DU-VI matrix.
pub struct CsrDuViChunks<V: Scalar> {
    matrix: Arc<CsrDuVi<V>>,
    splits: Vec<DuSplit>,
    bounds: Vec<usize>,
    isa: Isa,
}

impl<V: Scalar> CsrDuViChunks<V> {
    /// Plans `nchunks` nnz-balanced ctl-stream splits (kernel ISA
    /// snapshotted, as on [`CsrChunks::new`]).
    pub fn new(matrix: Arc<CsrDuVi<V>>, nchunks: usize) -> CsrDuViChunks<V> {
        let splits = matrix.splits(nchunks.max(1));
        let mut bounds = vec![0usize];
        bounds.extend(splits.iter().map(|s| s.row_end));
        CsrDuViChunks { matrix, splits, bounds, isa: spmv_core::simd::selected() }
    }
}

impl<V: Scalar> ChunkKernel<V> for CsrDuViChunks<V> {
    fn nrows(&self) -> usize {
        self.matrix.nrows()
    }
    fn ncols(&self) -> usize {
        self.matrix.ncols()
    }
    fn nchunks(&self) -> usize {
        self.splits.len()
    }
    fn chunk_rows(&self, chunk: usize) -> Range<usize> {
        self.bounds[chunk]..self.bounds[chunk + 1]
    }
    fn compute(&self, chunk: usize, x: &[V], out: &mut [V]) {
        self.matrix.spmv_split_local_isa(self.isa, &self.splits[chunk], x, out);
    }
    fn compute_block(&self, chunk: usize, x: &[V], k: usize, out: &mut [V]) {
        self.matrix.spmm_split_local_isa(self.isa, &self.splits[chunk], x, k, out);
    }
}

// ---------------------------------------------------------------------
// Watchdog configuration, errors, health
// ---------------------------------------------------------------------

/// What the supervisor does when a fault is detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Recover: re-execute affected chunks serially on the caller,
    /// respawn lost workers, return `Ok` with the events in the
    /// [`HealthReport`]. The result is bit-identical to a serial run.
    Degrade,
    /// Abort: return the first fault as a typed [`PoolError`], leaving
    /// the output buffer untouched. Lost workers are still respawned, so
    /// the executor remains usable.
    FailFast,
}

/// Watchdog configuration for [`SupervisedSpMv`].
#[derive(Debug, Clone, Copy)]
pub struct WatchdogOpts {
    /// How long a call waits for outstanding chunks before triaging
    /// their workers for death or stall. Any positive value is safe: a
    /// low deadline can only cause spurious (correct) serial recovery,
    /// never a wrong result.
    pub deadline: Duration,
    /// Degrade-and-recover or fail-fast.
    pub policy: RecoveryPolicy,
    /// `0` disables the self-check; `n > 0` re-executes every `n`-th
    /// chunk serially after all chunks complete and compares bit
    /// patterns, replacing any corrupted chunk with the serial result
    /// (`1` checks every chunk).
    pub verify_every: usize,
    /// When `true` (default) the calling thread claims chunks alongside
    /// the workers before supervising. `false` dedicates the caller to
    /// supervision — all chunks go to workers, which also makes fault
    /// injection deterministic in tests (the caller consults no hooks).
    pub caller_participates: bool,
}

impl Default for WatchdogOpts {
    /// Deadline from `SPMV_WATCHDOG_MS` (default 1 s), degrade-and-
    /// recover, self-check off.
    fn default() -> WatchdogOpts {
        WatchdogOpts {
            deadline: watchdog_deadline(),
            policy: RecoveryPolicy::Degrade,
            verify_every: 0,
            caller_participates: true,
        }
    }
}

/// Typed faults surfaced by [`RecoveryPolicy::FailFast`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// A worker panicked while computing `chunk`.
    WorkerPanicked { tid: usize, chunk: usize },
    /// A worker exceeded the watchdog deadline while holding `chunk`.
    WorkerStalled { tid: usize, chunk: usize, waited: Duration },
    /// A worker's thread terminated without completing `chunk`.
    WorkerDied { tid: usize, chunk: usize },
    /// A chunk's published result did not match its serial re-execution.
    ChunkCorrupted { chunk: usize },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::WorkerPanicked { tid, chunk } => {
                write!(f, "worker {tid} panicked while computing chunk {chunk}")
            }
            PoolError::WorkerStalled { tid, chunk, waited } => {
                write!(f, "worker {tid} stalled on chunk {chunk} ({waited:?} past deadline)")
            }
            PoolError::WorkerDied { tid, chunk } => {
                write!(f, "worker {tid} died without completing chunk {chunk}")
            }
            PoolError::ChunkCorrupted { chunk } => {
                write!(f, "chunk {chunk} failed the serial cross-check (corrupted result)")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// One observed-and-handled fault (see [`HealthReport`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// A worker panicked; the chunk was re-executed serially.
    WorkerPanicked { tid: usize, chunk: usize },
    /// A worker thread died mid-chunk; the chunk was re-executed
    /// serially.
    WorkerDied { tid: usize, chunk: usize },
    /// A live worker blew the deadline; it was abandoned (it exits on
    /// its own once its computation returns) and the chunk re-executed
    /// serially.
    WorkerStalled { tid: usize, chunk: usize, waited: Duration },
    /// A fresh thread took over a lost worker's roster slot.
    WorkerRespawned { tid: usize },
    /// The self-check caught a corrupted chunk and replaced it with the
    /// serial result.
    ChunkCorrupted { chunk: usize },
}

/// What happened during one supervised call. `events` empty ⇒ fully
/// healthy parallel execution; otherwise the call *degraded* — some
/// chunks ran serially on the caller — but the result is still correct.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HealthReport {
    /// Faults observed, in detection order.
    pub events: Vec<FaultEvent>,
    /// Chunks the caller re-executed serially (recovery work).
    pub recovered_chunks: usize,
    /// Per-thread heartbeat counters at the end of the call (index =
    /// tid; the caller is 0). Each thread bumps its counter at chunk
    /// claim and completion, so a low even count identifies the thread
    /// that did little work — diagnostic context for the events above.
    pub heartbeats: Vec<u64>,
    /// Per-thread busy time and chunk counts for this call (`dispatches`
    /// is always 1). `None` unless the crate's `telemetry` feature is
    /// enabled; recording is compiled out entirely when off.
    pub telemetry: Option<PoolTelemetry>,
}

impl HealthReport {
    /// `true` if any fault was observed (some work ran degraded).
    pub fn degraded(&self) -> bool {
        !self.events.is_empty()
    }
}

// ---------------------------------------------------------------------
// Per-call shared state
// ---------------------------------------------------------------------

/// Claim marker: chunk not yet claimed by any thread.
const UNCLAIMED: usize = usize::MAX;

struct Progress {
    /// Chunks with a published result.
    done: usize,
    /// `(chunk, tid)` pairs whose worker panicked (chunk unpublished).
    failed: Vec<(usize, usize)>,
}

/// Everything the workers touch during one call. Fully owned (behind an
/// `Arc`), so an abandoned worker can finish — or never finish — without
/// endangering the caller.
struct CallState<V: Scalar> {
    x: Vec<V>,
    /// Panel width: `x` is `ncols * k`, chunk outputs are `rows * k`
    /// row-major. `1` for plain SpMV.
    k: usize,
    nchunks: usize,
    /// Next unclaimed chunk.
    next: AtomicUsize,
    /// `claims[k]`: tid that claimed chunk `k`, or [`UNCLAIMED`].
    claims: Vec<AtomicUsize>,
    /// First published result per chunk wins; later publishes (an
    /// abandoned straggler finishing after recovery) are discarded.
    results: Vec<Mutex<Option<Vec<V>>>>,
    progress: Mutex<Progress>,
    done_cv: Condvar,
    /// Per-thread heartbeats (index = tid), bumped at chunk claim and
    /// completion. Diagnostic only; exposed through
    /// [`SupervisedSpMv::heartbeats`].
    hb: Vec<AtomicU64>,
    /// Per-thread busy nanoseconds (index = tid); each thread adds only
    /// to its own counter, relaxed ordering (diagnostics, not
    /// synchronization).
    #[cfg(feature = "telemetry")]
    busy_ns: Vec<AtomicU64>,
    #[cfg(feature = "fault-injection")]
    fault: crate::faults::FaultHandle,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs `f`, crediting its wall time to `tid`'s busy counter. Compiles to
/// a plain call without the `telemetry` feature.
#[inline]
fn timed<V: Scalar, R>(state: &CallState<V>, tid: usize, f: impl FnOnce() -> R) -> R {
    #[cfg(feature = "telemetry")]
    {
        let t0 = Instant::now();
        let r = f();
        state.busy_ns[tid].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        r
    }
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = (state, tid);
        f()
    }
}

impl<V: Scalar> CallState<V> {
    /// Publishes `out` for chunk `k` unless someone already did; returns
    /// whether this publish won.
    fn publish(&self, k: usize, out: Vec<V>) -> bool {
        {
            let mut slot = lock(&self.results[k]);
            if slot.is_some() {
                return false;
            }
            *slot = Some(out);
        }
        let mut p = lock(&self.progress);
        p.done += 1;
        if p.done == self.nchunks {
            self.done_cv.notify_all();
        }
        true
    }

    /// Records a worker panic on chunk `k` and wakes the supervisor.
    fn mark_failed(&self, k: usize, tid: usize) {
        let mut p = lock(&self.progress);
        p.failed.push((k, tid));
        self.done_cv.notify_all();
    }

    fn done(&self) -> usize {
        lock(&self.progress).done
    }
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

struct SupState<V: Scalar> {
    epoch: u64,
    job: Option<Arc<CallState<V>>>,
    shutdown: bool,
}

struct SupShared<V: Scalar> {
    state: Mutex<SupState<V>>,
    work_cv: Condvar,
}

/// Outcome of one worker chunk attempt.
enum ChunkRun<V> {
    Done(Vec<V>),
    #[cfg(feature = "fault-injection")]
    Exit,
}

/// Runs chunk `k` on a worker; returns `true` if the thread must exit
/// (injected death). Panics — injected or real — are caught and recorded
/// so the supervisor can recover without waiting for the deadline.
fn worker_chunk<V: Scalar>(
    job: &CallState<V>,
    kernel: &dyn ChunkKernel<V>,
    k: usize,
    tid: usize,
) -> bool {
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        #[cfg(feature = "fault-injection")]
        let injected = job.fault.before_compute(Some(k), tid);
        #[cfg(feature = "fault-injection")]
        if injected == Some(crate::faults::FaultAction::ExitThread) {
            // Simulated thread death: the claimed chunk stays unfinished.
            return ChunkRun::Exit;
        }
        let rows = kernel.chunk_rows(k);
        let mut out = vec![V::zero(); rows.len() * job.k];
        kernel.compute_block(k, &job.x, job.k, &mut out);
        #[cfg(feature = "fault-injection")]
        if injected == Some(crate::faults::FaultAction::CorruptChunk) {
            if let Some(v0) = out.first_mut() {
                *v0 = -*v0; // silent corruption only the self-check sees
            }
        }
        ChunkRun::Done(out)
    }));
    match outcome {
        Ok(ChunkRun::Done(out)) => {
            job.publish(k, out);
            false
        }
        #[cfg(feature = "fault-injection")]
        Ok(ChunkRun::Exit) => true,
        Err(_) => {
            job.mark_failed(k, tid);
            false
        }
    }
}

fn sup_worker_loop<V: Scalar>(
    shared: Arc<SupShared<V>>,
    kernel: Arc<dyn ChunkKernel<V>>,
    tid: usize,
    alive: Arc<AtomicBool>,
    mut seen_epoch: u64,
) {
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown || !alive.load(Ordering::Acquire) {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break Arc::clone(st.job.as_ref().expect("epoch advanced without a job"));
                }
                st = shared.work_cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        loop {
            if !alive.load(Ordering::Acquire) {
                // Abandoned mid-call: our roster slot has a replacement;
                // exit quietly (the job state is Arc-owned, nothing
                // dangles).
                return;
            }
            let k = job.next.fetch_add(1, Ordering::AcqRel);
            if k >= job.nchunks {
                break;
            }
            job.claims[k].store(tid, Ordering::Release);
            job.hb[tid].fetch_add(1, Ordering::AcqRel);
            if timed(&job, tid, || worker_chunk(&job, &*kernel, k, tid)) {
                return;
            }
            job.hb[tid].fetch_add(1, Ordering::AcqRel);
        }
    }
}

struct WorkerSlot {
    handle: JoinHandle<()>,
    alive: Arc<AtomicBool>,
}

// ---------------------------------------------------------------------
// The supervisor
// ---------------------------------------------------------------------

/// Fault-tolerant parallel SpMV executor over a [`ChunkKernel`].
///
/// Construction spawns `nthreads - 1` persistent workers (the caller
/// participates as thread 0). Each [`SupervisedSpMv::spmv`] call fans the
/// kernel's chunks out over the threads with dynamic claiming, supervises
/// them against the watchdog deadline, recovers per the policy, and
/// assembles `y`. See the module docs for the fault model.
pub struct SupervisedSpMv<V: Scalar> {
    kernel: Arc<dyn ChunkKernel<V>>,
    shared: Arc<SupShared<V>>,
    workers: Vec<WorkerSlot>,
    nthreads: usize,
    opts: WatchdogOpts,
}

impl<V: Scalar> SupervisedSpMv<V> {
    /// Spawns the worker roster for `kernel` with `nthreads` total
    /// threads and the given watchdog options.
    pub fn with_opts(
        kernel: Arc<dyn ChunkKernel<V>>,
        nthreads: usize,
        opts: WatchdogOpts,
    ) -> SupervisedSpMv<V> {
        assert!(nthreads >= 1, "need at least one thread");
        let shared = Arc::new(SupShared {
            state: Mutex::new(SupState { epoch: 0, job: None, shutdown: false }),
            work_cv: Condvar::new(),
        });
        let workers = (1..nthreads).map(|tid| spawn_sup_worker(&shared, &kernel, tid, 0)).collect();
        SupervisedSpMv { kernel, shared, workers, nthreads, opts }
    }

    /// [`SupervisedSpMv::with_opts`] with [`WatchdogOpts::default`].
    pub fn new(kernel: Arc<dyn ChunkKernel<V>>, nthreads: usize) -> SupervisedSpMv<V> {
        SupervisedSpMv::with_opts(kernel, nthreads, WatchdogOpts::default())
    }

    /// Threads per call (including the caller).
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// The watchdog options in effect.
    pub fn opts(&self) -> &WatchdogOpts {
        &self.opts
    }

    /// Replaces the watchdog deadline for subsequent calls — the
    /// serving layer's per-request deadline plumbing: each batch runs
    /// under the minimum remaining budget of its members instead of the
    /// construction-time default. Any positive value is safe (a low
    /// deadline can only cause spurious serial recovery, never a wrong
    /// result); sub-millisecond values are honored as given.
    pub fn set_deadline(&mut self, deadline: Duration) {
        assert!(deadline > Duration::ZERO, "watchdog deadline must be positive");
        self.opts.deadline = deadline;
    }

    /// Computes `y = A·x` under supervision.
    ///
    /// Returns the call's [`HealthReport`] (empty events ⇒ fully healthy
    /// parallel run). Under [`RecoveryPolicy::FailFast`] the first fault
    /// aborts with a [`PoolError`] and `y` is left untouched.
    pub fn spmv(&mut self, x: &[V], y: &mut [V]) -> Result<HealthReport, PoolError> {
        assert_eq!(x.len(), self.kernel.ncols(), "x length must equal ncols");
        assert_eq!(y.len(), self.kernel.nrows(), "y length must equal nrows");
        self.spmm(x, 1, y)
    }

    /// Computes the row-major panel `y[nrows x k] = A · x[ncols x k]`
    /// under supervision — the multi-vector analogue of
    /// [`SupervisedSpMv::spmv`], with the identical fault model: chunks
    /// are claimed dynamically, panics/stalls/deaths are recovered by
    /// re-executing the chunk's *panel* serially on the caller
    /// ([`RecoveryPolicy::Degrade`], bit-identical to a serial SpMM), or
    /// the first fault aborts with `y` untouched
    /// ([`RecoveryPolicy::FailFast`]). The `verify_every` self-check
    /// compares full chunk panels bit-for-bit. `k = 1` is bit-identical
    /// to [`SupervisedSpMv::spmv`].
    pub fn spmm(&mut self, x: &[V], k: usize, y: &mut [V]) -> Result<HealthReport, PoolError> {
        assert!(k >= 1, "need at least one right-hand side");
        assert_eq!(x.len(), self.kernel.ncols() * k, "x must be an ncols x k row-major panel");
        assert_eq!(y.len(), self.kernel.nrows() * k, "y must be an nrows x k row-major panel");
        let mut report = HealthReport::default();
        let nchunks = self.kernel.nchunks();
        if nchunks == 0 {
            y.fill(V::zero());
            return Ok(report);
        }
        let state = Arc::new(CallState {
            x: x.to_vec(),
            k,
            nchunks,
            next: AtomicUsize::new(0),
            claims: (0..nchunks).map(|_| AtomicUsize::new(UNCLAIMED)).collect(),
            results: (0..nchunks).map(|_| Mutex::new(None)).collect(),
            progress: Mutex::new(Progress { done: 0, failed: Vec::new() }),
            done_cv: Condvar::new(),
            hb: (0..self.nthreads).map(|_| AtomicU64::new(0)).collect(),
            #[cfg(feature = "telemetry")]
            busy_ns: (0..self.nthreads).map(|_| AtomicU64::new(0)).collect(),
            #[cfg(feature = "fault-injection")]
            fault: crate::faults::FaultHandle::capture(),
        });
        if self.nthreads > 1 {
            let mut st = lock(&self.shared.state);
            st.epoch += 1;
            st.job = Some(Arc::clone(&state));
            drop(st);
            self.shared.work_cv.notify_all();
        }
        // The caller participates as thread 0 (never fault-injected: a
        // scripted fault on the supervisor would be a fault in the test
        // harness, not in the system under test).
        if self.opts.caller_participates {
            loop {
                let k = state.next.fetch_add(1, Ordering::AcqRel);
                if k >= nchunks {
                    break;
                }
                state.claims[k].store(0, Ordering::Release);
                state.hb[0].fetch_add(1, Ordering::AcqRel);
                let rows = self.kernel.chunk_rows(k);
                let mut out = vec![V::zero(); rows.len() * state.k];
                timed(&state, 0, || self.kernel.compute_block(k, &state.x, state.k, &mut out));
                state.publish(k, out);
                state.hb[0].fetch_add(1, Ordering::AcqRel);
            }
        }
        self.supervise(&state, &mut report)?;
        if self.opts.verify_every > 0 {
            self.self_check(&state, &mut report)?;
        }
        report.heartbeats = state.hb.iter().map(|h| h.load(Ordering::Acquire)).collect();
        #[cfg(feature = "telemetry")]
        {
            // Chunk counts come from the claim ledger: who *claimed* each
            // chunk (recovery re-executions are credited to tid 0's busy
            // time but not double-counted as chunks).
            let mut chunks = vec![0u64; self.nthreads];
            for claim in &state.claims {
                let tid = claim.load(Ordering::Acquire);
                if tid != UNCLAIMED {
                    chunks[tid] += 1;
                }
            }
            report.telemetry = Some(PoolTelemetry {
                busy_ns: state.busy_ns.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
                chunks,
                dispatches: 1,
            });
        }
        // Assemble: zero y (covers rows outside every chunk), then copy
        // each chunk's winning panel into its row range (scaled by the
        // panel width).
        y.fill(V::zero());
        for c in 0..nchunks {
            let rows = self.kernel.chunk_rows(c);
            let slot = lock(&state.results[c]);
            let out = slot.as_ref().expect("all chunks resolved before assembly");
            y[rows.start * state.k..rows.end * state.k].copy_from_slice(out);
        }
        Ok(report)
    }

    /// Waits for all chunks, recovering panics immediately and triaging
    /// stragglers at the deadline.
    fn supervise(
        &mut self,
        state: &Arc<CallState<V>>,
        report: &mut HealthReport,
    ) -> Result<(), PoolError> {
        let start = Instant::now();
        loop {
            // Handle recorded worker panics without waiting for the
            // deadline.
            let failed = std::mem::take(&mut lock(&state.progress).failed);
            for (chunk, tid) in failed {
                report.events.push(FaultEvent::WorkerPanicked { tid, chunk });
                if self.opts.policy == RecoveryPolicy::FailFast {
                    return Err(PoolError::WorkerPanicked { tid, chunk });
                }
                self.recover_chunk(state, chunk, report);
            }
            if state.done() == state.nchunks {
                return Ok(());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.opts.deadline {
                return self.triage(state, report, elapsed);
            }
            let p = lock(&state.progress);
            if p.done < state.nchunks && p.failed.is_empty() {
                let _unused = state
                    .done_cv
                    .wait_timeout(p, self.opts.deadline - elapsed)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    /// Deadline expired with chunks outstanding: classify each straggling
    /// worker (dead vs stalled), abandon/respawn it, and re-execute its
    /// chunk serially (Degrade) or abort (FailFast).
    fn triage(
        &mut self,
        state: &Arc<CallState<V>>,
        report: &mut HealthReport,
        waited: Duration,
    ) -> Result<(), PoolError> {
        for chunk in 0..state.nchunks {
            if lock(&state.results[chunk]).is_some() {
                continue;
            }
            let tid = state.claims[chunk].load(Ordering::Acquire);
            let fault = if tid == UNCLAIMED || tid == 0 {
                // Unclaimed (workers died before reaching it) or the
                // supervisor's own — no worker to blame; just recover.
                None
            } else if self.workers[tid - 1].handle.is_finished() {
                Some((FaultEvent::WorkerDied { tid, chunk }, PoolError::WorkerDied { tid, chunk }))
            } else {
                Some((
                    FaultEvent::WorkerStalled { tid, chunk, waited },
                    PoolError::WorkerStalled { tid, chunk, waited },
                ))
            };
            if let Some((event, error)) = fault {
                report.events.push(event);
                self.respawn(tid, report);
                if self.opts.policy == RecoveryPolicy::FailFast {
                    return Err(error);
                }
            }
            // Unclaimed chunks carry no fault to report (the work just
            // has to happen somewhere) — recover them under both
            // policies.
            self.recover_chunk(state, chunk, report);
        }
        // Every chunk now has a published result; panics that raced the
        // scan still deserve their event (their chunk was recovered by
        // the loop above, so no further work is needed).
        let failed = std::mem::take(&mut lock(&state.progress).failed);
        for (chunk, tid) in failed {
            report.events.push(FaultEvent::WorkerPanicked { tid, chunk });
            if self.opts.policy == RecoveryPolicy::FailFast {
                return Err(PoolError::WorkerPanicked { tid, chunk });
            }
        }
        debug_assert_eq!(state.done(), state.nchunks, "triage must resolve every chunk");
        Ok(())
    }

    /// Re-executes `chunk` serially on the caller and publishes the
    /// result (first publish wins; a late straggler's result is
    /// discarded).
    fn recover_chunk(&self, state: &Arc<CallState<V>>, chunk: usize, report: &mut HealthReport) {
        let rows = self.kernel.chunk_rows(chunk);
        let mut out = vec![V::zero(); rows.len() * state.k];
        // Recovery runs on the caller: credit its busy time to tid 0.
        timed(state, 0, || self.kernel.compute_block(chunk, &state.x, state.k, &mut out));
        state.publish(chunk, out);
        report.recovered_chunks += 1;
    }

    /// Abandons worker `tid`'s current thread (if still running) and
    /// installs a fresh one in its roster slot, so the pool returns to
    /// full strength for subsequent calls.
    fn respawn(&mut self, tid: usize, report: &mut HealthReport) {
        self.workers[tid - 1].alive.store(false, Ordering::Release);
        let epoch = lock(&self.shared.state).epoch;
        // Dropping the old handle detaches the thread; an abandoned
        // straggler exits on its own when its computation returns and it
        // observes `alive == false`.
        self.workers[tid - 1] = spawn_sup_worker(&self.shared, &self.kernel, tid, epoch);
        report.events.push(FaultEvent::WorkerRespawned { tid });
    }

    /// Replaces any dead roster slot with a fresh worker thread and
    /// returns how many were respawned. The per-call watchdog already
    /// respawns workers it catches faulting *during* a call; this is the
    /// between-calls complement for executor handoff: a serving layer
    /// that parks an executor when its owning thread dies and hands it
    /// to a replacement thread calls this to restore the roster to full
    /// strength before dispatching again. Safe to call at any time the
    /// executor is not mid-call.
    pub fn ensure_workers(&mut self) -> usize {
        let epoch = lock(&self.shared.state).epoch;
        let mut respawned = 0;
        for i in 0..self.workers.len() {
            let slot = &self.workers[i];
            if slot.alive.load(Ordering::Acquire) && !slot.handle.is_finished() {
                continue;
            }
            slot.alive.store(false, Ordering::Release);
            self.workers[i] = spawn_sup_worker(&self.shared, &self.kernel, i + 1, epoch);
            respawned += 1;
        }
        respawned
    }

    /// Re-executes sampled chunks serially and compares bit patterns;
    /// replaces corrupted chunks with the serial result (Degrade) or
    /// aborts (FailFast).
    fn self_check(
        &self,
        state: &Arc<CallState<V>>,
        report: &mut HealthReport,
    ) -> Result<(), PoolError> {
        for chunk in (0..state.nchunks).step_by(self.opts.verify_every) {
            let rows = self.kernel.chunk_rows(chunk);
            let mut expect = vec![V::zero(); rows.len() * state.k];
            self.kernel.compute_block(chunk, &state.x, state.k, &mut expect);
            let mut slot = lock(&state.results[chunk]);
            let got = slot.as_ref().expect("all chunks resolved before self-check");
            let clean = got.len() == expect.len()
                && got.iter().zip(&expect).all(|(a, b)| a.to_bits() == b.to_bits());
            if clean {
                continue;
            }
            report.events.push(FaultEvent::ChunkCorrupted { chunk });
            if self.opts.policy == RecoveryPolicy::FailFast {
                return Err(PoolError::ChunkCorrupted { chunk });
            }
            *slot = Some(expect); // the serial result is authoritative
            report.recovered_chunks += 1;
        }
        Ok(())
    }
}

fn spawn_sup_worker<V: Scalar>(
    shared: &Arc<SupShared<V>>,
    kernel: &Arc<dyn ChunkKernel<V>>,
    tid: usize,
    seen_epoch: u64,
) -> WorkerSlot {
    let alive = Arc::new(AtomicBool::new(true));
    let handle = {
        let shared = Arc::clone(shared);
        let kernel = Arc::clone(kernel);
        let alive = Arc::clone(&alive);
        std::thread::Builder::new()
            .name(format!("spmv-supervised-{tid}"))
            .spawn(move || sup_worker_loop(shared, kernel, tid, alive, seen_epoch))
            .expect("failed to spawn supervised worker")
    };
    WorkerSlot { handle, alive }
}

impl<V: Scalar> Drop for SupervisedSpMv<V> {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
            st.job = None;
        }
        self.shared.work_cv.notify_all();
        for slot in self.workers.drain(..) {
            let _ = slot.handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_core::csr_du::DuOptions;
    use spmv_core::{Coo, SpMv};

    fn irregular(nrows: usize, ncols: usize, seed: u64) -> Coo<f64> {
        let mut t: Vec<(usize, usize, f64)> = Vec::new();
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for r in 0..nrows {
            if r % 11 == 3 {
                continue; // empty row
            }
            let len = 1 + (next() as usize) % 9;
            for _ in 0..len {
                t.push((r, (next() as usize) % ncols, ((next() % 17) as f64) - 8.0));
            }
        }
        let mut coo = Coo::from_triplets(nrows, ncols, t).unwrap();
        coo.canonicalize();
        coo
    }

    fn x_for(ncols: usize) -> Vec<f64> {
        (0..ncols).map(|i| ((i % 23) as f64) * 0.37 - 3.0).collect()
    }

    /// Opts with a deadline generous enough that healthy runs never
    /// degrade, regardless of any `SPMV_WATCHDOG_MS` in the environment.
    fn calm() -> WatchdogOpts {
        WatchdogOpts { deadline: Duration::from_secs(60), ..WatchdogOpts::default() }
    }

    fn kernels(
        csr: &Csr<u32, f64>,
        nchunks: usize,
    ) -> Vec<(&'static str, Arc<dyn ChunkKernel<f64>>)> {
        let du = CsrDu::from_csr(csr, &DuOptions::default());
        let vi = CsrVi::from_csr(csr);
        let duvi = CsrDuVi::from_csr(csr, &DuOptions::default());
        vec![
            ("csr", Arc::new(CsrChunks::new(Arc::new(csr.clone()), nchunks))),
            ("csr-du", Arc::new(CsrDuChunks::new(Arc::new(du), nchunks))),
            ("csr-vi", Arc::new(CsrViChunks::new(Arc::new(vi), nchunks))),
            ("csr-duvi", Arc::new(CsrDuViChunks::new(Arc::new(duvi), nchunks))),
        ]
    }

    #[test]
    fn set_deadline_changes_subsequent_calls_without_respawning() {
        let coo = irregular(120, 100, 3);
        let csr: Csr<u32, f64> = coo.to_csr();
        let x = x_for(100);
        let mut y_serial = vec![0.0; 120];
        csr.spmv(&x, &mut y_serial);
        let kernel: Arc<dyn ChunkKernel<f64>> = Arc::new(CsrChunks::new(Arc::new(csr), 6));
        let mut sup = SupervisedSpMv::with_opts(kernel, 3, calm());
        assert_eq!(sup.opts().deadline, Duration::from_secs(60));
        // Per-request deadline plumbing: tighten, run, relax, run — both
        // calls stay healthy and bit-identical on the same worker roster.
        sup.set_deadline(Duration::from_millis(200));
        assert_eq!(sup.opts().deadline, Duration::from_millis(200));
        let mut y = vec![99.0; 120];
        sup.spmv(&x, &mut y).expect("healthy run under tightened deadline");
        assert_eq!(y, y_serial);
        sup.set_deadline(Duration::from_secs(30));
        let mut y2 = vec![-1.0; 120];
        sup.spmv(&x, &mut y2).expect("healthy run after relaxing");
        assert_eq!(y2, y_serial);
    }

    #[test]
    #[should_panic(expected = "watchdog deadline must be positive")]
    fn zero_deadline_is_rejected() {
        let coo = irregular(40, 40, 5);
        let csr: Csr<u32, f64> = coo.to_csr();
        let kernel: Arc<dyn ChunkKernel<f64>> = Arc::new(CsrChunks::new(Arc::new(csr), 2));
        let mut sup = SupervisedSpMv::with_opts(kernel, 2, calm());
        sup.set_deadline(Duration::ZERO);
    }

    #[test]
    fn healthy_run_matches_serial_bit_exact_all_kernels() {
        let coo = irregular(180, 140, 7);
        let csr: Csr<u32, f64> = coo.to_csr();
        let x = x_for(140);
        let mut y_serial = vec![0.0; 180];
        csr.spmv(&x, &mut y_serial);
        for nthreads in [1usize, 2, 4, 7] {
            for (name, kernel) in kernels(&csr, nthreads * 2) {
                let mut sup = SupervisedSpMv::with_opts(kernel, nthreads, calm());
                let mut y = vec![99.0; 180];
                let report = sup.spmv(&x, &mut y).expect("healthy run");
                assert_eq!(y, y_serial, "{name} nthreads={nthreads}");
                assert!(!report.degraded(), "{name}: unexpected events {:?}", report.events);
            }
        }
    }

    #[test]
    fn supervised_spmm_matches_serial_panel_all_kernels() {
        let coo = irregular(130, 110, 13);
        let csr: Csr<u32, f64> = coo.to_csr();
        for k in [1usize, 2, 3, 4, 8] {
            let x: Vec<f64> = (0..110 * k).map(|i| ((i % 31) as f64) * 0.21 - 2.5).collect();
            let mut y_serial = vec![0.0; 130 * k];
            csr.spmm(&x, k, &mut y_serial);
            for nthreads in [1usize, 3] {
                for (name, kernel) in kernels(&csr, nthreads * 2) {
                    let mut sup = SupervisedSpMv::with_opts(kernel, nthreads, calm());
                    let mut y = vec![9.0; 130 * k];
                    let report = sup.spmm(&x, k, &mut y).expect("healthy run");
                    assert_eq!(y, y_serial, "{name} k={k} nthreads={nthreads}");
                    assert!(!report.degraded(), "{name}: events {:?}", report.events);
                }
            }
        }
    }

    #[test]
    fn default_compute_block_decomposes_per_column() {
        // A kernel that does NOT override compute_block still yields the
        // column-wise decomposition of its compute method.
        let coo = irregular(40, 30, 21);
        let csr: Csr<u32, f64> = coo.to_csr();
        let chunks = CsrChunks::new(Arc::new(csr.clone()), 3);
        let k = 3;
        let x: Vec<f64> = (0..30 * k).map(|i| (i as f64) * 0.11 - 1.0).collect();
        for chunk in 0..ChunkKernel::<f64>::nchunks(&chunks) {
            let rows = chunks.chunk_rows(chunk);
            let mut fused = vec![0.0; rows.len() * k];
            chunks.compute_block(chunk, &x, k, &mut fused);
            // Re-derive via the trait's default body: per-column compute.
            struct NoOverride(CsrChunks<u32, f64>);
            impl ChunkKernel<f64> for NoOverride {
                fn nrows(&self) -> usize {
                    ChunkKernel::nrows(&self.0)
                }
                fn ncols(&self) -> usize {
                    ChunkKernel::ncols(&self.0)
                }
                fn nchunks(&self) -> usize {
                    ChunkKernel::nchunks(&self.0)
                }
                fn chunk_rows(&self, chunk: usize) -> Range<usize> {
                    self.0.chunk_rows(chunk)
                }
                fn compute(&self, chunk: usize, x: &[f64], out: &mut [f64]) {
                    self.0.compute(chunk, x, out);
                }
            }
            let plain = NoOverride(CsrChunks::new(Arc::new(csr.clone()), 3));
            let mut columned = vec![0.0; rows.len() * k];
            plain.compute_block(chunk, &x, k, &mut columned);
            assert_eq!(fused, columned, "chunk {chunk}");
        }
    }

    #[test]
    fn supervised_plan_is_reusable() {
        let coo = irregular(90, 70, 3);
        let csr: Csr<u32, f64> = coo.to_csr();
        let x = x_for(70);
        let mut y_serial = vec![0.0; 90];
        csr.spmv(&x, &mut y_serial);
        let mut sup = SupervisedSpMv::new(Arc::new(CsrChunks::new(Arc::new(csr), 8)), 4);
        for call in 0..50 {
            let mut y = vec![-1.0; 90];
            sup.spmv(&x, &mut y).expect("healthy run");
            assert_eq!(y, y_serial, "call {call}");
        }
    }

    #[test]
    fn empty_matrix_yields_zero_y() {
        let csr: Csr<u32, f64> = Coo::from_triplets(5, 4, vec![]).unwrap().to_csr();
        let du = CsrDu::from_csr(&csr, &DuOptions::default());
        let mut sup = SupervisedSpMv::new(Arc::new(CsrDuChunks::new(Arc::new(du), 4)), 3);
        let mut y = vec![7.0; 5];
        let report = sup.spmv(&[0.0; 4], &mut y).expect("empty matrix");
        assert_eq!(y, vec![0.0; 5]);
        assert!(!report.degraded());
    }

    #[test]
    fn self_check_passes_on_healthy_run() {
        let coo = irregular(120, 100, 9);
        let csr: Csr<u32, f64> = coo.to_csr();
        let x = x_for(100);
        let mut y_serial = vec![0.0; 120];
        csr.spmv(&x, &mut y_serial);
        let opts = WatchdogOpts { verify_every: 1, ..calm() };
        let mut sup =
            SupervisedSpMv::with_opts(Arc::new(CsrChunks::new(Arc::new(csr), 6)), 4, opts);
        let mut y = vec![0.0; 120];
        let report = sup.spmv(&x, &mut y).expect("healthy verified run");
        assert_eq!(y, y_serial);
        assert!(!report.degraded(), "self-check must not trip on clean chunks");
    }

    #[test]
    fn failfast_on_healthy_run_is_ok() {
        let coo = irregular(60, 60, 5);
        let csr: Csr<u32, f64> = coo.to_csr();
        let x = x_for(60);
        let opts = WatchdogOpts { policy: RecoveryPolicy::FailFast, ..calm() };
        let mut sup =
            SupervisedSpMv::with_opts(Arc::new(CsrChunks::new(Arc::new(csr), 4)), 4, opts);
        let mut y = vec![0.0; 60];
        sup.spmv(&x, &mut y).expect("no fault, no error");
    }

    #[test]
    fn tight_deadline_never_corrupts_results() {
        // The no-false-trips property: an aggressively low deadline may
        // cause spurious serial recovery, but results stay bit-identical
        // and no error is returned under Degrade.
        let coo = irregular(150, 150, 11);
        let csr: Csr<u32, f64> = coo.to_csr();
        let x = x_for(150);
        let mut y_serial = vec![0.0; 150];
        csr.spmv(&x, &mut y_serial);
        let opts = WatchdogOpts {
            deadline: Duration::from_micros(1),
            policy: RecoveryPolicy::Degrade,
            ..WatchdogOpts::default()
        };
        let mut sup =
            SupervisedSpMv::with_opts(Arc::new(CsrChunks::new(Arc::new(csr), 16)), 4, opts);
        for _ in 0..10 {
            let mut y = vec![0.0; 150];
            sup.spmv(&x, &mut y).expect("degrade mode never errors");
            assert_eq!(y, y_serial);
        }
    }

    #[test]
    fn heartbeats_cover_all_threads() {
        let coo = irregular(100, 80, 2);
        let csr: Csr<u32, f64> = coo.to_csr();
        let x = x_for(80);
        let mut sup =
            SupervisedSpMv::with_opts(Arc::new(CsrChunks::new(Arc::new(csr), 8)), 3, calm());
        let mut y = vec![0.0; 100];
        let report = sup.spmv(&x, &mut y).expect("healthy run");
        assert_eq!(report.heartbeats.len(), 3);
        // All chunk work is accounted for: 2 beats per chunk, 8 chunks.
        assert_eq!(report.heartbeats.iter().sum::<u64>(), 16);
    }

    #[test]
    fn report_telemetry_matches_feature_state() {
        let coo = irregular(100, 80, 4);
        let csr: Csr<u32, f64> = coo.to_csr();
        let x = x_for(80);
        let mut sup =
            SupervisedSpMv::with_opts(Arc::new(CsrChunks::new(Arc::new(csr), 8)), 3, calm());
        let mut y = vec![0.0; 100];
        let report = sup.spmv(&x, &mut y).expect("healthy run");
        #[cfg(not(feature = "telemetry"))]
        assert!(report.telemetry.is_none());
        #[cfg(feature = "telemetry")]
        {
            let t = report.telemetry.expect("telemetry on");
            assert_eq!(t.busy_ns.len(), 3);
            assert_eq!(t.dispatches, 1);
            // Every chunk was claimed by exactly one thread.
            assert_eq!(t.chunks.iter().sum::<u64>(), 8);
            assert!(t.imbalance() >= 1.0);
        }
    }
}
