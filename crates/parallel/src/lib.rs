//! # spmv-parallel — partitioning schemes and multithreaded SpMV
//!
//! The paper parallelizes SpMV with *row partitioning* (§II-C): contiguous
//! row blocks, statically balanced by non-zero count, one block per thread.
//! Each thread then owns disjoint slices of `row_ptr`/`col_ind`/`values`
//! (or the `ctl` stream for CSR-DU) and of the output vector `y`, while all
//! threads share read-only access to `x`.
//!
//! This crate provides:
//!
//! * [`partition`] — row/column/block partitioning with nnz balancing;
//! * [`pool`] — thread-spawning helpers, including an iteration driver
//!   that spawns threads once and runs many SpMV iterations with a barrier
//!   between them (the paper's 128-iteration measurement protocol);
//! * [`par`] — per-format parallel executors ([`par::ParCsr`],
//!   [`par::ParCsrDu`], [`par::ParCsrVi`], [`par::ParCsrDuVi`],
//!   [`par::ParCscColumns`], [`par::ParCsrBlock2d`]) that pre-plan the
//!   partition and run `y = A·x` across `nthreads` scoped threads.
//!
//! The output vector is split into disjoint `&mut` sub-slices along the
//! partition boundaries, so the whole crate is safe Rust: the borrow
//! checker proves each row block is written by exactly one thread.
//!
//! The paper binds threads to specific cores with `sched_setaffinity` to
//! control cache sharing; placement here is a *logical* concept consumed
//! by the `spmv-memsim` performance model (this container cannot pin
//! cores), while the kernels themselves run on however many OS threads are
//! requested.

pub mod par;
pub mod partition;
pub mod pool;

pub use par::{
    ParCscColumns, ParCsr, ParCsrBlock2d, ParCsrDu, ParCsrDuVi, ParCsrVi, ParDcsr, ParSpMv,
    ParSymCsr,
};
pub use partition::{ColPartition, Grid2d, RowPartition};
pub use pool::{run_on_threads, IterationDriver};
