//! # spmv-parallel — partitioning schemes and multithreaded SpMV
//!
//! The paper parallelizes SpMV with *row partitioning* (§II-C): contiguous
//! row blocks, statically balanced by non-zero count, one block per thread.
//! Each thread then owns disjoint slices of `row_ptr`/`col_ind`/`values`
//! (or the `ctl` stream for CSR-DU) and of the output vector `y`, while all
//! threads share read-only access to `x`.
//!
//! ## Threading model (paper §VI-A)
//!
//! The paper's measurement protocol spawns its pthreads *once*, then times
//! 128 consecutive SpMV operations inside them with a barrier between
//! iterations — per-iteration cost contains no thread-creation overhead.
//! This crate mirrors that structure:
//!
//! * every executor owns a persistent [`pool::WorkerPool`], created at
//!   plan time: `nthreads - 1` OS workers parked on a condvar, woken per
//!   `par_spmv` call via an epoch/condvar handshake, with the calling
//!   thread participating as thread 0 (the paper's main pthread);
//! * all per-call scratch (the private `y` vectors of column and
//!   symmetric partitioning, the tile partials of 2-D blocking) is
//!   pre-allocated in the plan, so a steady-state `par_spmv` call performs
//!   **zero** heap allocations and **zero** thread spawns;
//! * cross-thread reductions run as a second chunked dispatch on the same
//!   pool (each thread sums a disjoint output chunk across all private
//!   vectors in fixed order, keeping results deterministic);
//! * [`pool::IterationDriver`] layers the 128-iteration barrier loop on
//!   top of one pool dispatch, with no barrier after the final round;
//! * dispatch takes `&mut self` (one in-flight job per pool, enforced by
//!   the borrow checker) and is panic-robust: `run` always drains every
//!   worker before returning or unwinding, and a panic on any thread is
//!   re-raised on the caller with the pool left reusable.
//!
//! This crate provides:
//!
//! * [`partition`] — row/column/block partitioning with nnz balancing
//!   (boundaries rounded to the nearest nnz prefix);
//! * [`pool`] — the persistent [`pool::WorkerPool`], the
//!   [`pool::IterationDriver`] measurement loop, and a spawn-per-call
//!   baseline ([`pool::run_on_threads`]) kept for one-shot fan-out and for
//!   quantifying dispatch overhead;
//! * [`par`] — per-format parallel executors ([`par::ParCsr`],
//!   [`par::ParCsrDu`], [`par::ParCsrVi`], [`par::ParCsrDuVi`],
//!   [`par::ParCscColumns`], [`par::ParCsrBlock2d`], [`par::ParDcsr`],
//!   [`par::ParSymCsr`]) that pre-plan partition, pool and scratch, and
//!   run `y = A·x` on the pool per call.
//!
//! Output and scratch buffers are handed to pool threads through
//! [`pool::DisjointSlices`], a small `unsafe` cell whose single invariant
//! — ranges claimed during one dispatch are pairwise disjoint — is
//! discharged at every call site by partition blocks that are disjoint by
//! construction. Everything else is safe Rust.
//!
//! The paper binds threads to specific cores with `sched_setaffinity` to
//! control cache sharing; placement here is a *logical* concept consumed
//! by the `spmv-memsim` performance model (this container cannot pin
//! cores), while the kernels themselves run on however many OS threads are
//! requested.
//!
//! ## Fault tolerance
//!
//! Long-running multithreaded SpMV must survive its workers, not trust
//! them. Two layers provide that (see the README's *Failure model*
//! section for the full contract):
//!
//! * [`pool::WorkerPool`] dispatches are watchdog-supervised: the caller
//!   monitors per-worker heartbeats against a deadline, takes over the
//!   slice of a worker that died, re-raises worker panics after draining
//!   the dispatch, flags (but waits for) merely-slow workers, and
//!   respawns lost threads on the next dispatch — surfacing everything as
//!   [`pool::PoolEvent`]s.
//! * [`supervised::SupervisedSpMv`] runs chunk-granular SpMV with typed
//!   fault handling: under [`supervised::RecoveryPolicy::Degrade`] any
//!   panicked, stalled, dead, or (with `verify_every`) corrupted chunk is
//!   re-executed serially on the caller — the result is bit-identical to
//!   a serial run and the call reports a [`supervised::HealthReport`];
//!   under [`supervised::RecoveryPolicy::FailFast`] the first fault
//!   returns a typed [`supervised::PoolError`] with `y` untouched. Either
//!   way the executor remains reusable.
//!
//! The `fault-injection` feature compiles in a deterministic scripted
//! fault harness ([`faults`], test-only) that drives panics, stalls,
//! thread deaths, and silent corruption through both layers; the recovery
//! matrix lives in `tests/fault_injection.rs`, and feature-independent
//! guarantees (tight-deadline correctness, self-check on honest kernels)
//! in the workspace-root `tests/fault_tolerance.rs`.
//!
//! ## Observability
//!
//! The `telemetry` feature compiles per-worker busy-time and work-item
//! counters ([`telemetry::PoolTelemetry`]) into the pool dispatch path
//! and the supervised executor, recorded lock-free into cache-line-
//! aligned relaxed atomics that each thread writes alone. Drain a window
//! with [`pool::WorkerPool::take_telemetry`] / [`ParSpMv::take_telemetry`]
//! or read [`supervised::HealthReport::telemetry`]; the derived
//! [`telemetry::PoolTelemetry::imbalance`] ratio (busiest thread over the
//! mean) is what the benchmark harness stores in `BENCH.json`. With the
//! feature off the types still compile (so signatures never change) but
//! every recording site is compiled out and the queries return `None`.

#[cfg(feature = "fault-injection")]
pub mod faults;
pub mod par;
pub mod partition;
pub mod pool;
pub mod spmspv;
pub mod supervised;
pub mod telemetry;

pub use par::{
    ParCscColumns, ParCsr, ParCsrBlock2d, ParCsrDu, ParCsrDuVi, ParCsrVi, ParDcsr, ParSpMm,
    ParSpMv, ParSymCsr,
};
pub use partition::{ColPartition, Grid2d, RowPartition};
pub use pool::{
    parse_watchdog_ms, run_on_threads, watchdog_deadline, watchdog_deadline_checked,
    DisjointSlices, IterationDriver, PoolEvent, WorkerPool, DEFAULT_WATCHDOG,
};
pub use spmspv::{ParMaskedSpMSpV, ParSpMSpV};
pub use supervised::{
    ChunkKernel, CsrChunks, CsrDuChunks, CsrDuViChunks, CsrViChunks, FaultEvent, HealthReport,
    PoolError, RecoveryPolicy, SupervisedSpMv, WatchdogOpts,
};
pub use telemetry::PoolTelemetry;
