//! Cross-checks: every parallel executor must produce results identical
//! (bit-exact for the row-partitioned ones) to the serial kernel, on
//! matrices with awkward shapes — including across many repeated calls on
//! one plan, which exercises the persistent worker pool and the
//! pre-allocated scratch.

use super::*;
use spmv_core::csr_du::DuOptions;
use spmv_core::Coo;
use spmv_core::SpMv;

/// An irregular test matrix: empty rows, skewed row lengths, a long row.
fn irregular(nrows: usize, ncols: usize, seed: u64) -> Coo<f64> {
    let mut t: Vec<(usize, usize, f64)> = Vec::new();
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for r in 0..nrows {
        if r % 13 == 5 {
            continue; // empty row
        }
        let len = 1 + (next() as usize) % 12;
        for _ in 0..len {
            t.push((r, (next() as usize) % ncols, ((next() % 17) as f64) - 8.0));
        }
    }
    // One long row.
    if nrows > 2 {
        for j in 0..(ncols / 2) {
            t.push((2, j * 2 % ncols, 1.5));
        }
    }
    let mut coo = Coo::from_triplets(nrows, ncols, t).unwrap();
    coo.canonicalize();
    coo
}

fn x_for(ncols: usize) -> Vec<f64> {
    (0..ncols).map(|i| ((i % 23) as f64) * 0.37 - 3.0).collect()
}

#[test]
fn par_csr_matches_serial_bit_exact() {
    let coo = irregular(200, 300, 1);
    let csr = coo.to_csr();
    let x = x_for(300);
    let mut y_serial = vec![0.0; 200];
    csr.spmv(&x, &mut y_serial);
    for nthreads in [1, 2, 3, 4, 7, 8] {
        let mut par = ParCsr::new(&csr, nthreads);
        let mut y = vec![99.0; 200];
        par.par_spmv(&x, &mut y);
        assert_eq!(y, y_serial, "nthreads={nthreads}");
    }
}

#[test]
fn par_csr_du_matches_serial_bit_exact() {
    let coo = irregular(200, 300, 2);
    let csr = coo.to_csr();
    let du = spmv_core::csr_du::CsrDu::from_csr(&csr, &DuOptions::default());
    let x = x_for(300);
    let mut y_serial = vec![0.0; 200];
    du.spmv(&x, &mut y_serial);
    for nthreads in [1, 2, 3, 5, 8] {
        let mut par = ParCsrDu::new(&du, nthreads);
        let mut y = vec![99.0; 200];
        par.par_spmv(&x, &mut y);
        assert_eq!(y, y_serial, "nthreads={nthreads}");
    }
}

#[test]
fn par_csr_vi_matches_serial_bit_exact() {
    let coo = irregular(150, 150, 3);
    let csr = coo.to_csr();
    let vi = CsrVi::from_csr(&csr);
    let x = x_for(150);
    let mut y_serial = vec![0.0; 150];
    vi.spmv(&x, &mut y_serial);
    for nthreads in [1, 2, 4, 6] {
        let mut par = ParCsrVi::new(&vi, nthreads);
        let mut y = vec![-1.0; 150];
        par.par_spmv(&x, &mut y);
        assert_eq!(y, y_serial, "nthreads={nthreads}");
    }
}

#[test]
fn par_csr_duvi_matches_serial_bit_exact() {
    let coo = irregular(150, 200, 4);
    let csr = coo.to_csr();
    let duvi = CsrDuVi::from_csr(&csr, &DuOptions::default());
    let x = x_for(200);
    let mut y_serial = vec![0.0; 150];
    duvi.spmv(&x, &mut y_serial);
    for nthreads in [1, 2, 4, 8] {
        let mut par = ParCsrDuVi::new(&duvi, nthreads);
        let mut y = vec![7.5; 150];
        par.par_spmv(&x, &mut y);
        assert_eq!(y, y_serial, "nthreads={nthreads}");
    }
}

#[test]
fn par_csc_columns_matches_reference_numerically() {
    // Column partitioning reorders additions, so compare with tolerance.
    let coo = irregular(120, 120, 5);
    let csr = coo.to_csr();
    let csc = Csc::from_csr(&csr).unwrap();
    let x = x_for(120);
    let mut y_ref = vec![0.0; 120];
    coo.spmv_reference(&x, &mut y_ref);
    for nthreads in [1, 2, 3, 4] {
        let mut par = ParCscColumns::new(&csc, nthreads);
        let mut y = vec![1.0; 120];
        par.par_spmv(&x, &mut y);
        for (i, (a, b)) in y.iter().zip(&y_ref).enumerate() {
            assert!((a - b).abs() < 1e-9, "nthreads={nthreads} row={i}: {a} vs {b}");
        }
    }
}

#[test]
fn par_csr_block2d_matches_reference_numerically() {
    let coo = irregular(100, 140, 6);
    let csr = coo.to_csr();
    let x = x_for(140);
    let mut y_ref = vec![0.0; 100];
    coo.spmv_reference(&x, &mut y_ref);
    for nthreads in [1, 2, 4, 6, 8, 9] {
        let mut par = ParCsrBlock2d::new(&csr, nthreads);
        assert_eq!(par.nthreads(), nthreads);
        let mut y = vec![2.0; 100];
        par.par_spmv(&x, &mut y);
        for (i, (a, b)) in y.iter().zip(&y_ref).enumerate() {
            assert!((a - b).abs() < 1e-9, "nthreads={nthreads} row={i}");
        }
    }
}

#[test]
fn block2d_tiles_visit_each_nonzero_exactly_once() {
    // The tile kernel binary-searches each row's sorted column indices to
    // its column block; summing the located ranges over all tiles in a
    // grid row must cover the matrix exactly once — the old
    // `cols.contains(&c)` filter streamed every row block's entries pc
    // times instead.
    let coo = irregular(100, 140, 6);
    let csr = coo.to_csr();
    for nthreads in [2, 4, 6, 9, 12] {
        let par = ParCsrBlock2d::new(&csr, nthreads);
        let grid = par.grid();
        let mut visited = 0usize;
        let mut next_expected = vec![std::collections::BTreeMap::new(); csr.nrows()];
        for t in 0..grid.len() {
            let (pr, _) = grid.coords(t);
            let row_part = RowPartition::for_csr(&csr, grid.pr);
            for i in row_part.part(pr) {
                let r = par.tile_row_entries(t, i);
                visited += r.len();
                // Ranges within one row must not overlap across tiles.
                for k in r {
                    assert!(
                        next_expected[i].insert(k, t).is_none(),
                        "entry {k} of row {i} visited twice (nthreads={nthreads})"
                    );
                }
            }
        }
        assert_eq!(visited, csr.nnz(), "nthreads={nthreads}");
    }
}

#[test]
fn block2d_handles_unsorted_free_columns_at_block_edges() {
    // Column blocks with awkward boundaries: a matrix whose rows span the
    // full width, checked bit-level against the per-row serial sum in the
    // same left-to-right order (binary search preserves in-row order).
    let coo = irregular(60, 61, 13);
    let csr = coo.to_csr();
    let x = x_for(61);
    let mut y_serial = vec![0.0; 60];
    csr.spmv(&x, &mut y_serial);
    let mut par = ParCsrBlock2d::new(&csr, 7); // pc = 7, pr = 1
    let mut y = vec![0.0; 60];
    par.par_spmv(&x, &mut y);
    for (i, (a, b)) in y.iter().zip(&y_serial).enumerate() {
        assert!((a - b).abs() < 1e-9, "row={i}: {a} vs {b}");
    }
}

#[test]
fn empty_matrix_all_executors() {
    let coo: Coo<f64> = Coo::new(10, 10);
    let csr = coo.to_csr();
    let du = spmv_core::csr_du::CsrDu::from_csr(&csr, &DuOptions::default());
    let vi = CsrVi::from_csr(&csr);
    let x = vec![1.0; 10];

    let mut y = vec![5.0; 10];
    ParCsr::new(&csr, 4).par_spmv(&x, &mut y);
    assert_eq!(y, vec![0.0; 10]);

    let mut y = vec![5.0; 10];
    ParCsrDu::new(&du, 4).par_spmv(&x, &mut y);
    assert_eq!(y, vec![0.0; 10]);

    let mut y = vec![5.0; 10];
    ParCsrVi::new(&vi, 4).par_spmv(&x, &mut y);
    assert_eq!(y, vec![0.0; 10]);
}

#[test]
fn more_threads_than_rows() {
    let coo = irregular(5, 50, 7);
    let csr = coo.to_csr();
    let x = x_for(50);
    let mut y_serial = vec![0.0; 5];
    csr.spmv(&x, &mut y_serial);
    let mut par = ParCsr::new(&csr, 16);
    let mut y = vec![0.0; 5];
    par.par_spmv(&x, &mut y);
    assert_eq!(y, y_serial);
}

#[test]
fn pool_reuse_many_calls_bit_identical() {
    // The tentpole's core claim: one plan (one pool, one scratch
    // allocation) serving hundreds of calls produces bit-identical output
    // every time, for the compressed formats and odd thread counts.
    let coo = irregular(160, 190, 21);
    let csr = coo.to_csr();
    let du = spmv_core::csr_du::CsrDu::from_csr(&csr, &DuOptions::default());
    let vi = CsrVi::from_csr(&csr);
    let x = x_for(190);
    let mut y_du_serial = vec![0.0; 160];
    du.spmv(&x, &mut y_du_serial);
    let mut y_vi_serial = vec![0.0; 160];
    vi.spmv(&x, &mut y_vi_serial);

    for nthreads in [1, 2, 3, 5, 7] {
        let mut par_du = ParCsrDu::new(&du, nthreads);
        let mut par_vi = ParCsrVi::new(&vi, nthreads);
        let mut y = vec![0.0; 160];
        for call in 0..120 {
            y.fill(f64::NAN); // must be fully overwritten every call
            par_du.par_spmv(&x, &mut y);
            assert_eq!(y, y_du_serial, "du nthreads={nthreads} call={call}");
            y.fill(f64::NAN);
            par_vi.par_spmv(&x, &mut y);
            assert_eq!(y, y_vi_serial, "vi nthreads={nthreads} call={call}");
        }
    }
}

#[test]
fn pool_reuse_interleaved_plans() {
    // Several live plans, each with its own pool, dispatched round-robin:
    // pools must not interfere with one another.
    let coo = irregular(130, 130, 22);
    let csr = coo.to_csr();
    let csc = Csc::from_csr(&csr).unwrap();
    let du = spmv_core::csr_du::CsrDu::from_csr(&csr, &DuOptions::default());
    let x = x_for(130);
    let mut y_serial = vec![0.0; 130];
    csr.spmv(&x, &mut y_serial);

    let mut p_csr = ParCsr::new(&csr, 3);
    let mut p_du = ParCsrDu::new(&du, 4);
    let mut p_csc = ParCscColumns::new(&csc, 2);
    let mut p_blk = ParCsrBlock2d::new(&csr, 6);
    let mut y = vec![0.0; 130];
    for _ in 0..50 {
        p_csr.par_spmv(&x, &mut y);
        assert_eq!(y, y_serial);
        p_du.par_spmv(&x, &mut y);
        assert_eq!(y, y_serial);
        p_csc.par_spmv(&x, &mut y);
        for (a, b) in y.iter().zip(&y_serial) {
            assert!((a - b).abs() < 1e-9);
        }
        p_blk.par_spmv(&x, &mut y);
        for (a, b) in y.iter().zip(&y_serial) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}

#[test]
fn repeated_iterations_with_driver() {
    // The paper's measurement loop: plan once, then many iterations over
    // the same partition through the spawn-once driver.
    use crate::pool::IterationDriver;
    use std::sync::atomic::{AtomicUsize, Ordering};
    let coo = irregular(64, 64, 8);
    let csr = coo.to_csr();
    let part = RowPartition::for_csr(&csr, 4);
    let x = x_for(64);
    let mut y = vec![0.0; 64];
    let mut y_serial = vec![0.0; 64];
    csr.spmv(&x, &mut y_serial);

    // Each driver thread owns one partition block across all rounds, as
    // the paper's pthreads do.
    let cell = crate::pool::DisjointSlices::new(&mut y);
    let rounds = AtomicUsize::new(0);
    let mut driver = IterationDriver::new(4, 16);
    driver.run(|tid, _iter| {
        let range = part.part(tid);
        // SAFETY: partition blocks are disjoint; one tid per block.
        let y_local = unsafe { cell.range(range.clone()) };
        csr.spmv_rows_local(range.start, range.end, &x, y_local);
        rounds.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(rounds.load(Ordering::Relaxed), 4 * 16);
    assert_eq!(y, y_serial);
}

#[test]
fn par_sym_csr_matches_reference_numerically() {
    // Symmetrize an irregular matrix.
    let base = irregular(90, 90, 11);
    let mut sym = Coo::new(90, 90);
    for &(r, c, v) in base.entries() {
        sym.push(r, c, v).unwrap();
        if r != c {
            sym.push(c, r, v).unwrap();
        }
    }
    sym.canonicalize();
    let full = sym.to_csr();
    let s = spmv_core::sym::SymCsr::from_csr(&full).unwrap();
    let x = x_for(90);
    let mut y_ref = vec![0.0; 90];
    sym.spmv_reference(&x, &mut y_ref);
    for nthreads in [1, 2, 3, 5] {
        let mut par = ParSymCsr::new(&s, nthreads);
        let mut y = vec![4.0; 90];
        par.par_spmv(&x, &mut y);
        for (i, (a, b)) in y.iter().zip(&y_ref).enumerate() {
            assert!((a - b).abs() < 1e-9, "nthreads={nthreads} row={i}");
        }
    }
}

#[test]
fn par_dcsr_matches_serial_bit_exact() {
    let coo = irregular(180, 250, 12);
    let csr = coo.to_csr();
    let d = spmv_core::dcsr::Dcsr::from_csr(&csr, &Default::default());
    let x = x_for(250);
    let mut y_serial = vec![0.0; 180];
    d.spmv(&x, &mut y_serial);
    for nthreads in [1, 2, 3, 6] {
        let mut par = ParDcsr::new(&d, nthreads);
        let mut y = vec![5.0; 180];
        par.par_spmv(&x, &mut y);
        assert_eq!(y, y_serial, "nthreads={nthreads}");
    }
}
