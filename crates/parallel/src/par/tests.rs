//! Cross-checks: every parallel executor must produce results identical
//! (bit-exact for the row-partitioned ones) to the serial kernel, on
//! matrices with awkward shapes.

use super::*;
use spmv_core::csr_du::DuOptions;
use spmv_core::SpMv;
use spmv_core::Coo;

/// An irregular test matrix: empty rows, skewed row lengths, a long row.
fn irregular(nrows: usize, ncols: usize, seed: u64) -> Coo<f64> {
    let mut t: Vec<(usize, usize, f64)> = Vec::new();
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for r in 0..nrows {
        if r % 13 == 5 {
            continue; // empty row
        }
        let len = 1 + (next() as usize) % 12;
        for _ in 0..len {
            t.push((r, (next() as usize) % ncols, ((next() % 17) as f64) - 8.0));
        }
    }
    // One long row.
    if nrows > 2 {
        for j in 0..(ncols / 2) {
            t.push((2, j * 2 % ncols, 1.5));
        }
    }
    let mut coo = Coo::from_triplets(nrows, ncols, t).unwrap();
    coo.canonicalize();
    coo
}

fn x_for(ncols: usize) -> Vec<f64> {
    (0..ncols).map(|i| ((i % 23) as f64) * 0.37 - 3.0).collect()
}

#[test]
fn par_csr_matches_serial_bit_exact() {
    let coo = irregular(200, 300, 1);
    let csr = coo.to_csr();
    let x = x_for(300);
    let mut y_serial = vec![0.0; 200];
    csr.spmv(&x, &mut y_serial);
    for nthreads in [1, 2, 3, 4, 7, 8] {
        let par = ParCsr::new(&csr, nthreads);
        let mut y = vec![99.0; 200];
        par.par_spmv(&x, &mut y);
        assert_eq!(y, y_serial, "nthreads={nthreads}");
    }
}

#[test]
fn par_csr_du_matches_serial_bit_exact() {
    let coo = irregular(200, 300, 2);
    let csr = coo.to_csr();
    let du = spmv_core::csr_du::CsrDu::from_csr(&csr, &DuOptions::default());
    let x = x_for(300);
    let mut y_serial = vec![0.0; 200];
    du.spmv(&x, &mut y_serial);
    for nthreads in [1, 2, 3, 5, 8] {
        let par = ParCsrDu::new(&du, nthreads);
        let mut y = vec![99.0; 200];
        par.par_spmv(&x, &mut y);
        assert_eq!(y, y_serial, "nthreads={nthreads}");
    }
}

#[test]
fn par_csr_vi_matches_serial_bit_exact() {
    let coo = irregular(150, 150, 3);
    let csr = coo.to_csr();
    let vi = CsrVi::from_csr(&csr);
    let x = x_for(150);
    let mut y_serial = vec![0.0; 150];
    vi.spmv(&x, &mut y_serial);
    for nthreads in [1, 2, 4, 6] {
        let par = ParCsrVi::new(&vi, nthreads);
        let mut y = vec![-1.0; 150];
        par.par_spmv(&x, &mut y);
        assert_eq!(y, y_serial, "nthreads={nthreads}");
    }
}

#[test]
fn par_csr_duvi_matches_serial_bit_exact() {
    let coo = irregular(150, 200, 4);
    let csr = coo.to_csr();
    let duvi = CsrDuVi::from_csr(&csr, &DuOptions::default());
    let x = x_for(200);
    let mut y_serial = vec![0.0; 150];
    duvi.spmv(&x, &mut y_serial);
    for nthreads in [1, 2, 4, 8] {
        let par = ParCsrDuVi::new(&duvi, nthreads);
        let mut y = vec![7.5; 150];
        par.par_spmv(&x, &mut y);
        assert_eq!(y, y_serial, "nthreads={nthreads}");
    }
}

#[test]
fn par_csc_columns_matches_reference_numerically() {
    // Column partitioning reorders additions, so compare with tolerance.
    let coo = irregular(120, 120, 5);
    let csr = coo.to_csr();
    let csc = Csc::from_csr(&csr);
    let x = x_for(120);
    let mut y_ref = vec![0.0; 120];
    coo.spmv_reference(&x, &mut y_ref);
    for nthreads in [1, 2, 3, 4] {
        let par = ParCscColumns::new(&csc, nthreads);
        let mut y = vec![1.0; 120];
        par.par_spmv(&x, &mut y);
        for (i, (a, b)) in y.iter().zip(&y_ref).enumerate() {
            assert!((a - b).abs() < 1e-9, "nthreads={nthreads} row={i}: {a} vs {b}");
        }
    }
}

#[test]
fn par_csr_block2d_matches_reference_numerically() {
    let coo = irregular(100, 140, 6);
    let csr = coo.to_csr();
    let x = x_for(140);
    let mut y_ref = vec![0.0; 100];
    coo.spmv_reference(&x, &mut y_ref);
    for nthreads in [1, 2, 4, 6, 8, 9] {
        let par = ParCsrBlock2d::new(&csr, nthreads);
        assert_eq!(par.nthreads(), nthreads);
        let mut y = vec![2.0; 100];
        par.par_spmv(&x, &mut y);
        for (i, (a, b)) in y.iter().zip(&y_ref).enumerate() {
            assert!((a - b).abs() < 1e-9, "nthreads={nthreads} row={i}");
        }
    }
}

#[test]
fn empty_matrix_all_executors() {
    let coo: Coo<f64> = Coo::new(10, 10);
    let csr = coo.to_csr();
    let du = spmv_core::csr_du::CsrDu::from_csr(&csr, &DuOptions::default());
    let vi = CsrVi::from_csr(&csr);
    let x = vec![1.0; 10];

    let mut y = vec![5.0; 10];
    ParCsr::new(&csr, 4).par_spmv(&x, &mut y);
    assert_eq!(y, vec![0.0; 10]);

    let mut y = vec![5.0; 10];
    ParCsrDu::new(&du, 4).par_spmv(&x, &mut y);
    assert_eq!(y, vec![0.0; 10]);

    let mut y = vec![5.0; 10];
    ParCsrVi::new(&vi, 4).par_spmv(&x, &mut y);
    assert_eq!(y, vec![0.0; 10]);
}

#[test]
fn more_threads_than_rows() {
    let coo = irregular(5, 50, 7);
    let csr = coo.to_csr();
    let x = x_for(50);
    let mut y_serial = vec![0.0; 5];
    csr.spmv(&x, &mut y_serial);
    let par = ParCsr::new(&csr, 16);
    let mut y = vec![0.0; 5];
    par.par_spmv(&x, &mut y);
    assert_eq!(y, y_serial);
}

#[test]
fn repeated_iterations_with_driver() {
    // The paper's measurement loop: 128 iterations over a fixed partition.
    use crate::pool::IterationDriver;
    let coo = irregular(64, 64, 8);
    let csr = coo.to_csr();
    let part = RowPartition::for_csr(&csr, 4);
    let x = x_for(64);
    let mut y = vec![0.0; 64];
    let mut y_serial = vec![0.0; 64];
    csr.spmv(&x, &mut y_serial);

    let slices = part.split_mut(&mut y);
    // Wrap each thread's slice in a Mutex-free cell: slices are disjoint,
    // but the driver's Fn closure is shared. Re-borrow via raw parts is
    // what par_spmv does; here we just run the partitioned kernel once per
    // iteration through scoped spawns inside the driver body instead.
    drop(slices);
    let driver = IterationDriver::new(1, 16);
    driver.run(|_tid, _iter| {
        let par = ParCsr::new(&csr, 4);
        let mut y_it = vec![0.0; 64];
        par.par_spmv(&x, &mut y_it);
        assert_eq!(y_it, y_serial);
    });
}

#[test]
fn par_sym_csr_matches_reference_numerically() {
    // Symmetrize an irregular matrix.
    let base = irregular(90, 90, 11);
    let mut sym = Coo::new(90, 90);
    for &(r, c, v) in base.entries() {
        sym.push(r, c, v).unwrap();
        if r != c {
            sym.push(c, r, v).unwrap();
        }
    }
    sym.canonicalize();
    let full = sym.to_csr();
    let s = spmv_core::sym::SymCsr::from_csr(&full).unwrap();
    let x = x_for(90);
    let mut y_ref = vec![0.0; 90];
    sym.spmv_reference(&x, &mut y_ref);
    for nthreads in [1, 2, 3, 5] {
        let par = ParSymCsr::new(&s, nthreads);
        let mut y = vec![4.0; 90];
        par.par_spmv(&x, &mut y);
        for (i, (a, b)) in y.iter().zip(&y_ref).enumerate() {
            assert!((a - b).abs() < 1e-9, "nthreads={nthreads} row={i}");
        }
    }
}

#[test]
fn par_dcsr_matches_serial_bit_exact() {
    let coo = irregular(180, 250, 12);
    let csr = coo.to_csr();
    let d = spmv_core::dcsr::Dcsr::from_csr(&csr, &Default::default());
    let x = x_for(250);
    let mut y_serial = vec![0.0; 180];
    d.spmv(&x, &mut y_serial);
    for nthreads in [1, 2, 3, 6] {
        let par = ParDcsr::new(&d, nthreads);
        let mut y = vec![5.0; 180];
        par.par_spmv(&x, &mut y);
        assert_eq!(y, y_serial, "nthreads={nthreads}");
    }
}
