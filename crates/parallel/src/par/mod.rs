//! Per-format parallel SpMV executors.
//!
//! Each executor pre-computes its partition at construction (the paper
//! also partitions once, outside the timed loop), then executes
//! `y = A·x` on `nthreads` scoped threads per call. `y` is split into
//! disjoint `&mut` sub-slices along partition boundaries, so every kernel
//! call writes only memory it owns.

use crate::partition::{ColPartition, Grid2d, RowPartition};
use spmv_core::csr_du::{CsrDu, DuSplit};
use spmv_core::csr_duvi::CsrDuVi;
use spmv_core::csr_vi::CsrVi;
use spmv_core::dcsr::{Dcsr, DcsrSplit};
use spmv_core::sym::SymCsr;
use spmv_core::{Csc, Csr, Scalar, SpIndex};

/// Common interface of the parallel executors (mirrors [`spmv_core::SpMv`] with a
/// fixed thread count chosen at plan time).
pub trait ParSpMv<V: Scalar>: Send + Sync {
    /// Number of threads this plan uses.
    fn nthreads(&self) -> usize;
    /// Computes `y = A·x` using the planned partition.
    fn par_spmv(&self, x: &[V], y: &mut [V]);
}

// ---------------------------------------------------------------------
// CSR — row partitioning
// ---------------------------------------------------------------------

/// Row-partitioned parallel CSR SpMV (the paper's baseline MT kernel).
pub struct ParCsr<'m, I: SpIndex = u32, V: Scalar = f64> {
    matrix: &'m Csr<I, V>,
    partition: RowPartition,
}

impl<'m, I: SpIndex, V: Scalar> ParCsr<'m, I, V> {
    /// Plans an nnz-balanced row partition over `nthreads` threads.
    pub fn new(matrix: &'m Csr<I, V>, nthreads: usize) -> Self {
        ParCsr { partition: RowPartition::for_csr(matrix, nthreads), matrix }
    }

    /// The planned partition.
    pub fn partition(&self) -> &RowPartition {
        &self.partition
    }
}

impl<I: SpIndex, V: Scalar> ParSpMv<V> for ParCsr<'_, I, V> {
    fn nthreads(&self) -> usize {
        self.partition.nparts()
    }

    fn par_spmv(&self, x: &[V], y: &mut [V]) {
        assert_eq!(x.len(), self.matrix.ncols(), "x length must equal ncols");
        assert_eq!(y.len(), self.matrix.nrows(), "y length must equal nrows");
        let slices = self.partition.split_mut(y);
        std::thread::scope(|s| {
            for (k, y_local) in slices.into_iter().enumerate() {
                let range = self.partition.part(k);
                let m = self.matrix;
                s.spawn(move || m.spmv_rows_local(range.start, range.end, x, y_local));
            }
        });
    }
}

// ---------------------------------------------------------------------
// CSR-DU — ctl-stream splits
// ---------------------------------------------------------------------

/// Row-partitioned parallel CSR-DU SpMV. Each thread receives "an offset
/// in the ctl, values and y arrays" (§IV) via a pre-computed [`DuSplit`].
pub struct ParCsrDu<'m, V: Scalar = f64> {
    matrix: &'m CsrDu<V>,
    splits: Vec<DuSplit>,
}

impl<'m, V: Scalar> ParCsrDu<'m, V> {
    /// Plans nnz-balanced ctl-stream splits over `nthreads` threads.
    pub fn new(matrix: &'m CsrDu<V>, nthreads: usize) -> Self {
        ParCsrDu { splits: matrix.splits(nthreads), matrix }
    }

    /// The planned splits (at most `nthreads`, fewer for tiny matrices).
    pub fn splits(&self) -> &[DuSplit] {
        &self.splits
    }
}

impl<V: Scalar> ParSpMv<V> for ParCsrDu<'_, V> {
    fn nthreads(&self) -> usize {
        self.splits.len()
    }

    fn par_spmv(&self, x: &[V], y: &mut [V]) {
        assert_eq!(x.len(), self.matrix.ncols(), "x length must equal ncols");
        assert_eq!(y.len(), self.matrix.nrows(), "y length must equal nrows");
        // Split y along the split row boundaries.
        let mut slices: Vec<&mut [V]> = Vec::with_capacity(self.splits.len());
        let mut rest = y;
        let mut prev = 0usize;
        for split in &self.splits {
            let (head, tail) = rest.split_at_mut(split.row_end - prev);
            slices.push(head);
            rest = tail;
            prev = split.row_end;
        }
        // Trailing rows after the last split (possible only when the last
        // split ends early; splits() always ends at nrows, so rest is
        // empty — zero it defensively anyway).
        for v in rest.iter_mut() {
            *v = V::zero();
        }
        std::thread::scope(|s| {
            for (split, y_local) in self.splits.iter().zip(slices) {
                let m = self.matrix;
                s.spawn(move || m.spmv_split_local(split, x, y_local));
            }
        });
    }
}

// ---------------------------------------------------------------------
// CSR-VI — row partitioning
// ---------------------------------------------------------------------

/// Row-partitioned parallel CSR-VI SpMV ("trivially derived from the
/// serial by providing to each thread the first and the last row", §V).
pub struct ParCsrVi<'m, I: SpIndex = u32, V: Scalar = f64> {
    matrix: &'m CsrVi<I, V>,
    partition: RowPartition,
}

impl<'m, I: SpIndex, V: Scalar> ParCsrVi<'m, I, V> {
    /// Plans an nnz-balanced row partition over `nthreads` threads.
    pub fn new(matrix: &'m CsrVi<I, V>, nthreads: usize) -> Self {
        ParCsrVi { partition: RowPartition::by_nnz(matrix.row_ptr(), nthreads), matrix }
    }
}

impl<I: SpIndex, V: Scalar> ParSpMv<V> for ParCsrVi<'_, I, V> {
    fn nthreads(&self) -> usize {
        self.partition.nparts()
    }

    fn par_spmv(&self, x: &[V], y: &mut [V]) {
        assert_eq!(x.len(), self.matrix.ncols(), "x length must equal ncols");
        assert_eq!(y.len(), self.matrix.nrows(), "y length must equal nrows");
        let slices = self.partition.split_mut(y);
        std::thread::scope(|s| {
            for (k, y_local) in slices.into_iter().enumerate() {
                let range = self.partition.part(k);
                let m = self.matrix;
                s.spawn(move || m.spmv_rows_local(range.start, range.end, x, y_local));
            }
        });
    }
}

// ---------------------------------------------------------------------
// CSR-DU-VI — ctl-stream splits
// ---------------------------------------------------------------------

/// Row-partitioned parallel CSR-DU-VI SpMV.
pub struct ParCsrDuVi<'m, V: Scalar = f64> {
    matrix: &'m CsrDuVi<V>,
    splits: Vec<DuSplit>,
}

impl<'m, V: Scalar> ParCsrDuVi<'m, V> {
    /// Plans nnz-balanced ctl-stream splits over `nthreads` threads.
    pub fn new(matrix: &'m CsrDuVi<V>, nthreads: usize) -> Self {
        ParCsrDuVi { splits: matrix.splits(nthreads), matrix }
    }
}

impl<V: Scalar> ParSpMv<V> for ParCsrDuVi<'_, V> {
    fn nthreads(&self) -> usize {
        self.splits.len()
    }

    fn par_spmv(&self, x: &[V], y: &mut [V]) {
        assert_eq!(x.len(), self.matrix.ncols(), "x length must equal ncols");
        assert_eq!(y.len(), self.matrix.nrows(), "y length must equal nrows");
        let mut slices: Vec<&mut [V]> = Vec::with_capacity(self.splits.len());
        let mut rest = y;
        let mut prev = 0usize;
        for split in &self.splits {
            let (head, tail) = rest.split_at_mut(split.row_end - prev);
            slices.push(head);
            rest = tail;
            prev = split.row_end;
        }
        for v in rest.iter_mut() {
            *v = V::zero();
        }
        std::thread::scope(|s| {
            for (split, y_local) in self.splits.iter().zip(slices) {
                let m = self.matrix;
                s.spawn(move || m.spmv_split_local(split, x, y_local));
            }
        });
    }
}

// ---------------------------------------------------------------------
// CSC — column partitioning with private-y reduction
// ---------------------------------------------------------------------

/// Column-partitioned parallel CSC SpMV (§II-C): each thread runs a column
/// block into a *private* y vector ("the best practice is to have each
/// thread use its own y array"), followed by a reducing addition.
pub struct ParCscColumns<'m, I: SpIndex = u32, V: Scalar = f64> {
    matrix: &'m Csc<I, V>,
    partition: ColPartition,
}

impl<'m, I: SpIndex, V: Scalar> ParCscColumns<'m, I, V> {
    /// Plans an nnz-balanced column partition over `nthreads` threads.
    pub fn new(matrix: &'m Csc<I, V>, nthreads: usize) -> Self {
        ParCscColumns { partition: ColPartition::by_nnz(matrix.col_ptr(), nthreads), matrix }
    }
}

impl<I: SpIndex, V: Scalar> ParSpMv<V> for ParCscColumns<'_, I, V> {
    fn nthreads(&self) -> usize {
        self.partition.nparts()
    }

    fn par_spmv(&self, x: &[V], y: &mut [V]) {
        assert_eq!(x.len(), self.matrix.ncols(), "x length must equal ncols");
        assert_eq!(y.len(), self.matrix.nrows(), "y length must equal nrows");
        let nparts = self.partition.nparts();
        let nrows = self.matrix.nrows();
        // Private y per thread, reduced at the end (deterministic order).
        let mut privates: Vec<Vec<V>> = (0..nparts).map(|_| vec![V::zero(); nrows]).collect();
        std::thread::scope(|s| {
            for (k, y_private) in privates.iter_mut().enumerate() {
                let range = self.partition.part(k);
                let m = self.matrix;
                s.spawn(move || m.spmv_cols_acc(range.start, range.end, x, y_private));
            }
        });
        for v in y.iter_mut() {
            *v = V::zero();
        }
        for y_private in &privates {
            for (dst, src) in y.iter_mut().zip(y_private) {
                *dst += *src;
            }
        }
    }
}

// ---------------------------------------------------------------------
// CSR — 2-D block partitioning
// ---------------------------------------------------------------------

/// Block-partitioned parallel CSR SpMV (§II-C): threads form a `pr x pc`
/// grid; each owns a (row block, column block) tile. Threads in the same
/// grid row share output rows, so each writes a private slice that a
/// final pass reduces. Demonstrates the partitioning trade-off space
/// (ablation A3); the tile scan filters by column range, so it streams
/// the whole row block's data — the configurable-size benefit comes at a
/// bandwidth cost, as the paper notes for machines like Cell.
pub struct ParCsrBlock2d<'m, I: SpIndex = u32, V: Scalar = f64> {
    matrix: &'m Csr<I, V>,
    grid: Grid2d,
    rows: RowPartition,
    col_bounds: Vec<usize>,
}

impl<'m, I: SpIndex, V: Scalar> ParCsrBlock2d<'m, I, V> {
    /// Plans a near-square `pr x pc` grid with nnz-balanced row blocks and
    /// uniform column blocks.
    pub fn new(matrix: &'m Csr<I, V>, nthreads: usize) -> Self {
        let grid = Grid2d::squarest(nthreads);
        let rows = RowPartition::for_csr(matrix, grid.pr);
        let col_bounds: Vec<usize> =
            (0..=grid.pc).map(|k| k * matrix.ncols() / grid.pc).collect();
        ParCsrBlock2d { matrix, grid, rows, col_bounds }
    }

    /// The thread grid.
    pub fn grid(&self) -> Grid2d {
        self.grid
    }
}

impl<I: SpIndex, V: Scalar> ParSpMv<V> for ParCsrBlock2d<'_, I, V> {
    fn nthreads(&self) -> usize {
        self.grid.len()
    }

    fn par_spmv(&self, x: &[V], y: &mut [V]) {
        assert_eq!(x.len(), self.matrix.ncols(), "x length must equal ncols");
        assert_eq!(y.len(), self.matrix.nrows(), "y length must equal nrows");
        let m = self.matrix;
        // One private partial-y per tile, sized to its row block.
        let mut partials: Vec<Vec<V>> = (0..self.grid.len())
            .map(|t| {
                let (pr, _) = self.grid.coords(t);
                vec![V::zero(); self.rows.part(pr).len()]
            })
            .collect();
        std::thread::scope(|s| {
            for (t, partial) in partials.iter_mut().enumerate() {
                let (pr, pc) = self.grid.coords(t);
                let rows = self.rows.part(pr);
                let cols = self.col_bounds[pc]..self.col_bounds[pc + 1];
                s.spawn(move || {
                    for (li, i) in rows.clone().enumerate() {
                        let mut acc = V::zero();
                        for (c, v) in m.row_iter(i) {
                            if cols.contains(&c) {
                                acc += v * x[c];
                            }
                        }
                        partial[li] = acc;
                    }
                });
            }
        });
        // Reduce grid rows.
        for v in y.iter_mut() {
            *v = V::zero();
        }
        for (t, partial) in partials.iter().enumerate() {
            let (pr, _) = self.grid.coords(t);
            let rows = self.rows.part(pr);
            for (li, i) in rows.enumerate() {
                y[i] += partial[li];
            }
        }
    }
}

// ---------------------------------------------------------------------
// DCSR — command-stream splits
// ---------------------------------------------------------------------

/// Row-partitioned parallel DCSR SpMV, mirroring [`ParCsrDu`] over the
/// command stream. Provided for completeness of the related-work
/// comparison (the paper only compares serial DCSR).
pub struct ParDcsr<'m, V: Scalar = f64> {
    matrix: &'m Dcsr<V>,
    splits: Vec<DcsrSplit>,
}

impl<'m, V: Scalar> ParDcsr<'m, V> {
    /// Plans nnz-balanced command-stream splits over `nthreads` threads.
    pub fn new(matrix: &'m Dcsr<V>, nthreads: usize) -> Self {
        ParDcsr { splits: matrix.splits(nthreads), matrix }
    }
}

impl<V: Scalar> ParSpMv<V> for ParDcsr<'_, V> {
    fn nthreads(&self) -> usize {
        self.splits.len()
    }

    fn par_spmv(&self, x: &[V], y: &mut [V]) {
        assert_eq!(x.len(), self.matrix.ncols(), "x length must equal ncols");
        assert_eq!(y.len(), self.matrix.nrows(), "y length must equal nrows");
        let mut slices: Vec<&mut [V]> = Vec::with_capacity(self.splits.len());
        let mut rest = y;
        let mut prev = 0usize;
        for split in &self.splits {
            let (head, tail) = rest.split_at_mut(split.row_end - prev);
            slices.push(head);
            rest = tail;
            prev = split.row_end;
        }
        for v in rest.iter_mut() {
            *v = V::zero();
        }
        std::thread::scope(|s| {
            for (split, y_local) in self.splits.iter().zip(slices) {
                let m = self.matrix;
                s.spawn(move || m.spmv_split_local(split, x, y_local));
            }
        });
    }
}

// ---------------------------------------------------------------------
// Symmetric CSR — row partitioning with private-y mirror accumulation
// ---------------------------------------------------------------------

/// Parallel symmetric-CSR SpMV. The lower-triangle rows are partitioned
/// by stored nnz, but each stored off-diagonal entry also contributes to
/// a *foreign* row of `y` (the mirrored upper-triangle term), so every
/// thread accumulates into a private full-length `y` that a final pass
/// reduces — the same structure column partitioning needs (§II-C).
pub struct ParSymCsr<'m, I: SpIndex = u32, V: Scalar = f64> {
    matrix: &'m SymCsr<I, V>,
    partition: RowPartition,
}

impl<'m, I: SpIndex, V: Scalar> ParSymCsr<'m, I, V> {
    /// Plans an nnz-balanced row partition over the stored triangle.
    pub fn new(matrix: &'m SymCsr<I, V>, nthreads: usize) -> Self {
        ParSymCsr { partition: RowPartition::for_csr(matrix.lower(), nthreads), matrix }
    }
}

impl<I: SpIndex, V: Scalar> ParSpMv<V> for ParSymCsr<'_, I, V> {
    fn nthreads(&self) -> usize {
        self.partition.nparts()
    }

    fn par_spmv(&self, x: &[V], y: &mut [V]) {
        let n = self.matrix.n();
        assert_eq!(x.len(), n, "x length must equal n");
        assert_eq!(y.len(), n, "y length must equal n");
        let lower = self.matrix.lower();
        let nparts = self.partition.nparts();
        let mut privates: Vec<Vec<V>> = (0..nparts).map(|_| vec![V::zero(); n]).collect();
        std::thread::scope(|s| {
            for (k, y_private) in privates.iter_mut().enumerate() {
                let rows = self.partition.part(k);
                s.spawn(move || {
                    for i in rows {
                        let mut acc = V::zero();
                        for (j, a) in lower.row_iter(i) {
                            acc += a * x[j];
                            if j != i {
                                y_private[j] += a * x[i];
                            }
                        }
                        y_private[i] += acc;
                    }
                });
            }
        });
        for v in y.iter_mut() {
            *v = V::zero();
        }
        for y_private in &privates {
            for (dst, src) in y.iter_mut().zip(y_private) {
                *dst += *src;
            }
        }
    }
}

#[cfg(test)]
mod tests;
