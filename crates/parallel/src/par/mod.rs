//! Per-format parallel SpMV executors.
//!
//! Each executor pre-computes its partition at construction (the paper
//! also partitions once, outside the timed loop) and owns a persistent
//! [`WorkerPool`] plus whatever scratch its reduction needs, so a
//! steady-state [`ParSpMv::par_spmv`] call spawns no threads and performs
//! no heap allocation: the pool is woken, each thread runs its planned
//! block, and executors that need cross-thread reductions run them as a
//! second chunked dispatch on the same pool.
//!
//! Output safety: `y` (and any plan-owned scratch) is handed to threads
//! through [`DisjointSlices`], with ranges taken from partitions whose
//! blocks are disjoint by construction — every kernel call writes only
//! memory it owns.

use crate::partition::{ColPartition, Grid2d, RowPartition};
use crate::pool::{chunk, DisjointSlices, WorkerPool};
use crate::telemetry::PoolTelemetry;
use spmv_core::csr_du::{CsrDu, DuSplit};
use spmv_core::csr_duvi::CsrDuVi;
use spmv_core::csr_vi::CsrVi;
use spmv_core::dcsr::{Dcsr, DcsrSplit};
use spmv_core::sym::SymCsr;
use spmv_core::{Csc, Csr, Isa, Scalar, SpIndex};

/// Common interface of the parallel executors (mirrors [`spmv_core::SpMv`]
/// with a fixed thread count chosen at plan time).
///
/// `par_spmv` takes `&mut self` because a plan owns mutable per-call state
/// — its worker pool and pre-allocated reduction scratch — and a single
/// plan must not be dispatched concurrently from two threads.
pub trait ParSpMv<V: Scalar>: Send {
    /// Number of threads this plan uses.
    fn nthreads(&self) -> usize;
    /// Computes `y = A·x` using the planned partition.
    fn par_spmv(&mut self, x: &[V], y: &mut [V]);
    /// Drains this plan's per-worker telemetry accumulated since the last
    /// drain (see [`WorkerPool::take_telemetry`]). Returns `None` when the
    /// crate's `telemetry` feature is off. The default exists for external
    /// implementors; every executor in this module forwards to its pool.
    fn take_telemetry(&mut self) -> Option<PoolTelemetry> {
        None
    }
}

/// Multi-vector extension of [`ParSpMv`]: `Y = A·X` for a row-major panel
/// of `k` right-hand sides (`x[col * k + v]`, `y[row * k + v]` — the
/// [`spmv_core::DenseBlock`] layout), reusing the executor's planned
/// partition and persistent pool. Implemented by the four paper-format
/// executors ([`ParCsr`], [`ParCsrDu`], [`ParCsrVi`], [`ParCsrDuVi`]):
/// each thread decodes its row block **once** and broadcasts every
/// decoded scalar across the `k`-wide panel, so the per-thread decode
/// cost of the compressed formats is amortized `k`-fold. With `k = 1`
/// the result is bit-identical to [`ParSpMv::par_spmv`].
pub trait ParSpMm<V: Scalar>: ParSpMv<V> {
    /// Computes `Y = A·X` using the planned partition. Panics if
    /// `x.len() != ncols * k` or `y.len() != nrows * k` or `k == 0`.
    fn par_spmm(&mut self, x: &[V], k: usize, y: &mut [V]);
}

/// Shared panel-shape preamble of the `par_spmm` implementations.
fn assert_panel_lens<V>(nrows: usize, ncols: usize, x: &[V], k: usize, y: &[V]) {
    assert!(k >= 1, "need at least one right-hand side");
    assert_eq!(x.len(), ncols * k, "x must be ncols x k row-major");
    assert_eq!(y.len(), nrows * k, "y must be nrows x k row-major");
}

/// Row bounds implied by ctl-stream splits: `[0, splits[0].row_end, ...]`.
fn split_row_bounds(row_ends: impl Iterator<Item = usize>) -> Vec<usize> {
    let mut bounds = vec![0usize];
    bounds.extend(row_ends);
    bounds
}

// ---------------------------------------------------------------------
// CSR — row partitioning
// ---------------------------------------------------------------------

/// Row-partitioned parallel CSR SpMV (the paper's baseline MT kernel).
pub struct ParCsr<'m, I: SpIndex = u32, V: Scalar = f64> {
    matrix: &'m Csr<I, V>,
    partition: RowPartition,
    pool: WorkerPool,
    isa: Isa,
}

impl<'m, I: SpIndex, V: Scalar> ParCsr<'m, I, V> {
    /// Plans an nnz-balanced row partition over `nthreads` threads. The
    /// kernel ISA is snapshotted here (like the partition: chosen once,
    /// outside the timed loop).
    pub fn new(matrix: &'m Csr<I, V>, nthreads: usize) -> Self {
        Self::with_isa(matrix, nthreads, spmv_core::simd::selected())
    }

    /// Like [`ParCsr::new`] with an explicit kernel ISA (unavailable
    /// choices degrade to scalar inside the kernel dispatch).
    pub fn with_isa(matrix: &'m Csr<I, V>, nthreads: usize, isa: Isa) -> Self {
        let partition = RowPartition::for_csr(matrix, nthreads);
        let pool = WorkerPool::new(partition.nparts());
        ParCsr { partition, matrix, pool, isa }
    }

    /// The planned partition.
    pub fn partition(&self) -> &RowPartition {
        &self.partition
    }

    /// The kernel ISA snapshotted at plan time.
    pub fn kernel_isa(&self) -> Isa {
        self.isa
    }
}

impl<I: SpIndex, V: Scalar> ParSpMv<V> for ParCsr<'_, I, V> {
    fn nthreads(&self) -> usize {
        self.partition.nparts()
    }

    fn take_telemetry(&mut self) -> Option<PoolTelemetry> {
        self.pool.take_telemetry()
    }

    fn par_spmv(&mut self, x: &[V], y: &mut [V]) {
        assert_eq!(x.len(), self.matrix.ncols(), "x length must equal ncols");
        assert_eq!(y.len(), self.matrix.nrows(), "y length must equal nrows");
        let slices = DisjointSlices::new(y);
        let partition = &self.partition;
        let m = self.matrix;
        let isa = self.isa;
        self.pool.run(|tid| {
            let range = partition.part(tid);
            // SAFETY: partition blocks are disjoint; one tid per block.
            let y_local = unsafe { slices.range(range.clone()) };
            m.spmv_rows_local_isa(isa, range.start, range.end, x, y_local);
        });
    }
}

impl<I: SpIndex, V: Scalar> ParSpMm<V> for ParCsr<'_, I, V> {
    fn par_spmm(&mut self, x: &[V], k: usize, y: &mut [V]) {
        assert_panel_lens(self.matrix.nrows(), self.matrix.ncols(), x, k, y);
        let slices = DisjointSlices::new(y);
        let partition = &self.partition;
        let m = self.matrix;
        let isa = self.isa;
        self.pool.run(|tid| {
            let range = partition.part(tid);
            // SAFETY: partition blocks are disjoint; one tid per block
            // (panel ranges scale the disjoint row ranges by k).
            let y_local = unsafe { slices.range(range.start * k..range.end * k) };
            m.spmm_rows_local_isa(isa, range.start, range.end, x, k, y_local);
        });
    }
}

// ---------------------------------------------------------------------
// CSR-DU — ctl-stream splits
// ---------------------------------------------------------------------

/// Row-partitioned parallel CSR-DU SpMV. Each thread receives "an offset
/// in the ctl, values and y arrays" (§IV) via a pre-computed [`DuSplit`].
pub struct ParCsrDu<'m, V: Scalar = f64> {
    matrix: &'m CsrDu<V>,
    splits: Vec<DuSplit>,
    row_bounds: Vec<usize>,
    pool: WorkerPool,
    isa: Isa,
}

impl<'m, V: Scalar> ParCsrDu<'m, V> {
    /// Plans nnz-balanced ctl-stream splits over `nthreads` threads. The
    /// kernel ISA is snapshotted at plan time.
    pub fn new(matrix: &'m CsrDu<V>, nthreads: usize) -> Self {
        Self::with_isa(matrix, nthreads, spmv_core::simd::selected())
    }

    /// Like [`ParCsrDu::new`] with an explicit kernel ISA.
    pub fn with_isa(matrix: &'m CsrDu<V>, nthreads: usize, isa: Isa) -> Self {
        let splits = matrix.splits(nthreads);
        let row_bounds = split_row_bounds(splits.iter().map(|s| s.row_end));
        let pool = WorkerPool::new(splits.len().max(1));
        ParCsrDu { splits, row_bounds, matrix, pool, isa }
    }

    /// The planned splits (at most `nthreads`, fewer for tiny matrices).
    pub fn splits(&self) -> &[DuSplit] {
        &self.splits
    }

    /// The kernel ISA snapshotted at plan time.
    pub fn kernel_isa(&self) -> Isa {
        self.isa
    }
}

impl<V: Scalar> ParSpMv<V> for ParCsrDu<'_, V> {
    fn nthreads(&self) -> usize {
        self.splits.len()
    }

    fn take_telemetry(&mut self) -> Option<PoolTelemetry> {
        self.pool.take_telemetry()
    }

    fn par_spmv(&mut self, x: &[V], y: &mut [V]) {
        assert_eq!(x.len(), self.matrix.ncols(), "x length must equal ncols");
        assert_eq!(y.len(), self.matrix.nrows(), "y length must equal nrows");
        // Trailing rows after the last split (splits() always ends at
        // nrows, so this is empty — zero it defensively anyway).
        let covered = *self.row_bounds.last().expect("nonempty bounds");
        for v in y[covered..].iter_mut() {
            *v = V::zero();
        }
        if self.splits.is_empty() {
            return;
        }
        let slices = DisjointSlices::new(y);
        let splits = &self.splits;
        let bounds = &self.row_bounds;
        let m = self.matrix;
        let isa = self.isa;
        self.pool.run(|tid| {
            // SAFETY: split row ranges are disjoint; one tid per split.
            let y_local = unsafe { slices.range(bounds[tid]..bounds[tid + 1]) };
            m.spmv_split_local_isa(isa, &splits[tid], x, y_local);
        });
    }
}

impl<V: Scalar> ParSpMm<V> for ParCsrDu<'_, V> {
    fn par_spmm(&mut self, x: &[V], k: usize, y: &mut [V]) {
        assert_panel_lens(self.matrix.nrows(), self.matrix.ncols(), x, k, y);
        let covered = *self.row_bounds.last().expect("nonempty bounds");
        for v in y[covered * k..].iter_mut() {
            *v = V::zero();
        }
        if self.splits.is_empty() {
            return;
        }
        let slices = DisjointSlices::new(y);
        let splits = &self.splits;
        let bounds = &self.row_bounds;
        let m = self.matrix;
        let isa = self.isa;
        self.pool.run(|tid| {
            // SAFETY: split row ranges are disjoint; one tid per split.
            let y_local = unsafe { slices.range(bounds[tid] * k..bounds[tid + 1] * k) };
            m.spmm_split_local_isa(isa, &splits[tid], x, k, y_local);
        });
    }
}

// ---------------------------------------------------------------------
// CSR-VI — row partitioning
// ---------------------------------------------------------------------

/// Row-partitioned parallel CSR-VI SpMV ("trivially derived from the
/// serial by providing to each thread the first and the last row", §V).
pub struct ParCsrVi<'m, I: SpIndex = u32, V: Scalar = f64> {
    matrix: &'m CsrVi<I, V>,
    partition: RowPartition,
    pool: WorkerPool,
    isa: Isa,
}

impl<'m, I: SpIndex, V: Scalar> ParCsrVi<'m, I, V> {
    /// Plans an nnz-balanced row partition over `nthreads` threads. The
    /// kernel ISA is snapshotted at plan time.
    pub fn new(matrix: &'m CsrVi<I, V>, nthreads: usize) -> Self {
        Self::with_isa(matrix, nthreads, spmv_core::simd::selected())
    }

    /// Like [`ParCsrVi::new`] with an explicit kernel ISA.
    pub fn with_isa(matrix: &'m CsrVi<I, V>, nthreads: usize, isa: Isa) -> Self {
        let partition = RowPartition::by_nnz(matrix.row_ptr(), nthreads);
        let pool = WorkerPool::new(partition.nparts());
        ParCsrVi { partition, matrix, pool, isa }
    }

    /// The kernel ISA snapshotted at plan time.
    pub fn kernel_isa(&self) -> Isa {
        self.isa
    }
}

impl<I: SpIndex, V: Scalar> ParSpMv<V> for ParCsrVi<'_, I, V> {
    fn nthreads(&self) -> usize {
        self.partition.nparts()
    }

    fn take_telemetry(&mut self) -> Option<PoolTelemetry> {
        self.pool.take_telemetry()
    }

    fn par_spmv(&mut self, x: &[V], y: &mut [V]) {
        assert_eq!(x.len(), self.matrix.ncols(), "x length must equal ncols");
        assert_eq!(y.len(), self.matrix.nrows(), "y length must equal nrows");
        let slices = DisjointSlices::new(y);
        let partition = &self.partition;
        let m = self.matrix;
        let isa = self.isa;
        self.pool.run(|tid| {
            let range = partition.part(tid);
            // SAFETY: partition blocks are disjoint; one tid per block.
            let y_local = unsafe { slices.range(range.clone()) };
            m.spmv_rows_local_isa(isa, range.start, range.end, x, y_local);
        });
    }
}

impl<I: SpIndex, V: Scalar> ParSpMm<V> for ParCsrVi<'_, I, V> {
    fn par_spmm(&mut self, x: &[V], k: usize, y: &mut [V]) {
        assert_panel_lens(self.matrix.nrows(), self.matrix.ncols(), x, k, y);
        let slices = DisjointSlices::new(y);
        let partition = &self.partition;
        let m = self.matrix;
        let isa = self.isa;
        self.pool.run(|tid| {
            let range = partition.part(tid);
            // SAFETY: partition blocks are disjoint; one tid per block.
            let y_local = unsafe { slices.range(range.start * k..range.end * k) };
            m.spmm_rows_local_isa(isa, range.start, range.end, x, k, y_local);
        });
    }
}

// ---------------------------------------------------------------------
// CSR-DU-VI — ctl-stream splits
// ---------------------------------------------------------------------

/// Row-partitioned parallel CSR-DU-VI SpMV.
pub struct ParCsrDuVi<'m, V: Scalar = f64> {
    matrix: &'m CsrDuVi<V>,
    splits: Vec<DuSplit>,
    row_bounds: Vec<usize>,
    pool: WorkerPool,
    isa: Isa,
}

impl<'m, V: Scalar> ParCsrDuVi<'m, V> {
    /// Plans nnz-balanced ctl-stream splits over `nthreads` threads. The
    /// kernel ISA is snapshotted at plan time.
    pub fn new(matrix: &'m CsrDuVi<V>, nthreads: usize) -> Self {
        Self::with_isa(matrix, nthreads, spmv_core::simd::selected())
    }

    /// Like [`ParCsrDuVi::new`] with an explicit kernel ISA.
    pub fn with_isa(matrix: &'m CsrDuVi<V>, nthreads: usize, isa: Isa) -> Self {
        let splits = matrix.splits(nthreads);
        let row_bounds = split_row_bounds(splits.iter().map(|s| s.row_end));
        let pool = WorkerPool::new(splits.len().max(1));
        ParCsrDuVi { splits, row_bounds, matrix, pool, isa }
    }

    /// The kernel ISA snapshotted at plan time.
    pub fn kernel_isa(&self) -> Isa {
        self.isa
    }
}

impl<V: Scalar> ParSpMv<V> for ParCsrDuVi<'_, V> {
    fn nthreads(&self) -> usize {
        self.splits.len()
    }

    fn take_telemetry(&mut self) -> Option<PoolTelemetry> {
        self.pool.take_telemetry()
    }

    fn par_spmv(&mut self, x: &[V], y: &mut [V]) {
        assert_eq!(x.len(), self.matrix.ncols(), "x length must equal ncols");
        assert_eq!(y.len(), self.matrix.nrows(), "y length must equal nrows");
        let covered = *self.row_bounds.last().expect("nonempty bounds");
        for v in y[covered..].iter_mut() {
            *v = V::zero();
        }
        if self.splits.is_empty() {
            return;
        }
        let slices = DisjointSlices::new(y);
        let splits = &self.splits;
        let bounds = &self.row_bounds;
        let m = self.matrix;
        let isa = self.isa;
        self.pool.run(|tid| {
            // SAFETY: split row ranges are disjoint; one tid per split.
            let y_local = unsafe { slices.range(bounds[tid]..bounds[tid + 1]) };
            m.spmv_split_local_isa(isa, &splits[tid], x, y_local);
        });
    }
}

impl<V: Scalar> ParSpMm<V> for ParCsrDuVi<'_, V> {
    fn par_spmm(&mut self, x: &[V], k: usize, y: &mut [V]) {
        assert_panel_lens(self.matrix.nrows(), self.matrix.ncols(), x, k, y);
        let covered = *self.row_bounds.last().expect("nonempty bounds");
        for v in y[covered * k..].iter_mut() {
            *v = V::zero();
        }
        if self.splits.is_empty() {
            return;
        }
        let slices = DisjointSlices::new(y);
        let splits = &self.splits;
        let bounds = &self.row_bounds;
        let m = self.matrix;
        let isa = self.isa;
        self.pool.run(|tid| {
            // SAFETY: split row ranges are disjoint; one tid per split.
            let y_local = unsafe { slices.range(bounds[tid] * k..bounds[tid + 1] * k) };
            m.spmm_split_local_isa(isa, &splits[tid], x, k, y_local);
        });
    }
}

// ---------------------------------------------------------------------
// CSC — column partitioning with private-y reduction
// ---------------------------------------------------------------------

/// Column-partitioned parallel CSC SpMV (§II-C): each thread runs a column
/// block into a *private* y vector ("the best practice is to have each
/// thread use its own y array"), followed by a chunked parallel reduction
/// on the same pool. The private vectors are pre-allocated at plan time.
pub struct ParCscColumns<'m, I: SpIndex = u32, V: Scalar = f64> {
    matrix: &'m Csc<I, V>,
    partition: ColPartition,
    pool: WorkerPool,
    /// `nparts` private y vectors, stored flat (`nparts * nrows`).
    privates: Vec<V>,
}

impl<'m, I: SpIndex, V: Scalar> ParCscColumns<'m, I, V> {
    /// Plans an nnz-balanced column partition over `nthreads` threads.
    pub fn new(matrix: &'m Csc<I, V>, nthreads: usize) -> Self {
        let partition = ColPartition::by_nnz(matrix.col_ptr(), nthreads);
        let pool = WorkerPool::new(partition.nparts());
        let privates = vec![V::zero(); partition.nparts() * matrix.nrows()];
        ParCscColumns { partition, matrix, pool, privates }
    }
}

impl<I: SpIndex, V: Scalar> ParSpMv<V> for ParCscColumns<'_, I, V> {
    fn nthreads(&self) -> usize {
        self.partition.nparts()
    }

    fn take_telemetry(&mut self) -> Option<PoolTelemetry> {
        self.pool.take_telemetry()
    }

    fn par_spmv(&mut self, x: &[V], y: &mut [V]) {
        assert_eq!(x.len(), self.matrix.ncols(), "x length must equal ncols");
        assert_eq!(y.len(), self.matrix.nrows(), "y length must equal nrows");
        let nparts = self.partition.nparts();
        let nrows = self.matrix.nrows();
        let partition = &self.partition;
        let m = self.matrix;
        // Dispatch 1: each thread zeroes its private y and accumulates its
        // column block into it.
        let priv_cell = DisjointSlices::new(&mut self.privates);
        self.pool.run(|tid| {
            // SAFETY: per-thread stripes of the flat buffer are disjoint.
            let y_private = unsafe { priv_cell.range(tid * nrows..(tid + 1) * nrows) };
            for v in y_private.iter_mut() {
                *v = V::zero();
            }
            let range = partition.part(tid);
            m.spmv_cols_acc(range.start, range.end, x, y_private);
        });
        // Dispatch 2: chunked parallel reduction. Each thread sums its row
        // chunk across all privates in fixed part order, so the result is
        // bit-identical to the serial reduction.
        let privates = &self.privates;
        let y_cell = DisjointSlices::new(y);
        self.pool.run(|tid| {
            let rows = chunk(nrows, nparts, tid);
            // SAFETY: uniform chunks are disjoint; one tid per chunk.
            let y_chunk = unsafe { y_cell.range(rows.clone()) };
            for (li, i) in rows.enumerate() {
                let mut acc = V::zero();
                for k in 0..nparts {
                    acc += privates[k * nrows + i];
                }
                y_chunk[li] = acc;
            }
        });
    }
}

// ---------------------------------------------------------------------
// CSR — 2-D block partitioning
// ---------------------------------------------------------------------

/// Block-partitioned parallel CSR SpMV (§II-C): threads form a `pr x pc`
/// grid; each owns a (row block, column block) tile. Threads in the same
/// grid row share output rows, so each writes a private partial that a
/// chunked second dispatch reduces. Demonstrates the partitioning
/// trade-off space (ablation A3). Within each row, the tile's entries are
/// located by binary search on the sorted column indices, so a tile only
/// streams its own non-zeros (plus the row pointers).
pub struct ParCsrBlock2d<'m, I: SpIndex = u32, V: Scalar = f64> {
    matrix: &'m Csr<I, V>,
    grid: Grid2d,
    rows: RowPartition,
    col_bounds: Vec<usize>,
    pool: WorkerPool,
    /// Per-tile partial y blocks, stored flat; tile `t` owns
    /// `partials[partial_off[t]..partial_off[t + 1]]` (its row block's
    /// length).
    partials: Vec<V>,
    partial_off: Vec<usize>,
}

impl<'m, I: SpIndex, V: Scalar> ParCsrBlock2d<'m, I, V> {
    /// Plans a near-square `pr x pc` grid with nnz-balanced row blocks and
    /// uniform column blocks.
    pub fn new(matrix: &'m Csr<I, V>, nthreads: usize) -> Self {
        let grid = Grid2d::squarest(nthreads);
        let rows = RowPartition::for_csr(matrix, grid.pr);
        let col_bounds: Vec<usize> = (0..=grid.pc).map(|k| k * matrix.ncols() / grid.pc).collect();
        let mut partial_off = Vec::with_capacity(grid.len() + 1);
        partial_off.push(0);
        for t in 0..grid.len() {
            let (pr, _) = grid.coords(t);
            partial_off.push(partial_off[t] + rows.part(pr).len());
        }
        let partials = vec![V::zero(); *partial_off.last().expect("nonempty offsets")];
        let pool = WorkerPool::new(grid.len());
        ParCsrBlock2d { matrix, grid, rows, col_bounds, pool, partials, partial_off }
    }

    /// The thread grid.
    pub fn grid(&self) -> Grid2d {
        self.grid
    }

    /// Value/column positions of row `i` falling in tile `t`'s column
    /// block, found by binary search on the row's sorted column indices.
    /// Exposed so tests can count exactly how many entries each tile
    /// visits.
    pub fn tile_row_entries(&self, t: usize, i: usize) -> std::ops::Range<usize> {
        let (_, pc) = self.grid.coords(t);
        let rr = self.matrix.row_range(i);
        let cind = &self.matrix.col_ind()[rr.clone()];
        let lo = rr.start + cind.partition_point(|c| c.index() < self.col_bounds[pc]);
        let hi = rr.start + cind.partition_point(|c| c.index() < self.col_bounds[pc + 1]);
        lo..hi
    }
}

impl<I: SpIndex, V: Scalar> ParSpMv<V> for ParCsrBlock2d<'_, I, V> {
    fn nthreads(&self) -> usize {
        self.grid.len()
    }

    fn take_telemetry(&mut self) -> Option<PoolTelemetry> {
        self.pool.take_telemetry()
    }

    fn par_spmv(&mut self, x: &[V], y: &mut [V]) {
        assert_eq!(x.len(), self.matrix.ncols(), "x length must equal ncols");
        assert_eq!(y.len(), self.matrix.nrows(), "y length must equal nrows");
        let m = self.matrix;
        let grid = self.grid;
        let rows = &self.rows;
        let col_bounds = &self.col_bounds;
        let offs = &self.partial_off;
        let col_ind = m.col_ind();
        let values = m.values();
        // Dispatch 1: each tile computes its partial y block, visiting
        // only entries inside its column range (binary search per row).
        let part_cell = DisjointSlices::new(&mut self.partials);
        self.pool.run(|t| {
            let (pr, pc) = grid.coords(t);
            let row_block = rows.part(pr);
            let (c_lo, c_hi) = (col_bounds[pc], col_bounds[pc + 1]);
            // SAFETY: per-tile stripes of the flat buffer are disjoint.
            let partial = unsafe { part_cell.range(offs[t]..offs[t + 1]) };
            for (li, i) in row_block.enumerate() {
                let rr = m.row_range(i);
                let cind = &col_ind[rr.clone()];
                let lo = rr.start + cind.partition_point(|c| c.index() < c_lo);
                let hi = rr.start + cind.partition_point(|c| c.index() < c_hi);
                let mut acc = V::zero();
                for k in lo..hi {
                    acc += values[k] * x[col_ind[k].index()];
                }
                partial[li] = acc;
            }
        });
        // Dispatch 2: reduce across each grid row. Thread (pr, pc) owns
        // the pc-th uniform chunk of row block pr, so all grid.len()
        // threads reduce concurrently into disjoint y ranges, summing
        // tiles in fixed pc order (deterministic).
        let partials = &self.partials;
        let y_cell = DisjointSlices::new(y);
        self.pool.run(|t| {
            let (pr, pc) = grid.coords(t);
            let row_block = rows.part(pr);
            let local = chunk(row_block.len(), grid.pc, pc);
            let out = row_block.start + local.start..row_block.start + local.end;
            // SAFETY: chunks of distinct row blocks never overlap, and
            // uniform chunks within one block are disjoint.
            let y_chunk = unsafe { y_cell.range(out) };
            for (ci, li) in local.enumerate() {
                let mut acc = V::zero();
                for pcj in 0..grid.pc {
                    acc += partials[offs[pr * grid.pc + pcj] + li];
                }
                y_chunk[ci] = acc;
            }
        });
    }
}

// ---------------------------------------------------------------------
// DCSR — command-stream splits
// ---------------------------------------------------------------------

/// Row-partitioned parallel DCSR SpMV, mirroring [`ParCsrDu`] over the
/// command stream. Provided for completeness of the related-work
/// comparison (the paper only compares serial DCSR).
pub struct ParDcsr<'m, V: Scalar = f64> {
    matrix: &'m Dcsr<V>,
    splits: Vec<DcsrSplit>,
    row_bounds: Vec<usize>,
    pool: WorkerPool,
}

impl<'m, V: Scalar> ParDcsr<'m, V> {
    /// Plans nnz-balanced command-stream splits over `nthreads` threads.
    pub fn new(matrix: &'m Dcsr<V>, nthreads: usize) -> Self {
        let splits = matrix.splits(nthreads);
        let row_bounds = split_row_bounds(splits.iter().map(|s| s.row_end));
        let pool = WorkerPool::new(splits.len().max(1));
        ParDcsr { splits, row_bounds, matrix, pool }
    }
}

impl<V: Scalar> ParSpMv<V> for ParDcsr<'_, V> {
    fn nthreads(&self) -> usize {
        self.splits.len()
    }

    fn take_telemetry(&mut self) -> Option<PoolTelemetry> {
        self.pool.take_telemetry()
    }

    fn par_spmv(&mut self, x: &[V], y: &mut [V]) {
        assert_eq!(x.len(), self.matrix.ncols(), "x length must equal ncols");
        assert_eq!(y.len(), self.matrix.nrows(), "y length must equal nrows");
        let covered = *self.row_bounds.last().expect("nonempty bounds");
        for v in y[covered..].iter_mut() {
            *v = V::zero();
        }
        if self.splits.is_empty() {
            return;
        }
        let slices = DisjointSlices::new(y);
        let splits = &self.splits;
        let bounds = &self.row_bounds;
        let m = self.matrix;
        self.pool.run(|tid| {
            // SAFETY: split row ranges are disjoint; one tid per split.
            let y_local = unsafe { slices.range(bounds[tid]..bounds[tid + 1]) };
            m.spmv_split_local(&splits[tid], x, y_local);
        });
    }
}

// ---------------------------------------------------------------------
// Symmetric CSR — row partitioning with private-y mirror accumulation
// ---------------------------------------------------------------------

/// Parallel symmetric-CSR SpMV. The lower-triangle rows are partitioned
/// by stored nnz, but each stored off-diagonal entry also contributes to
/// a *foreign* row of `y` (the mirrored upper-triangle term), so every
/// thread accumulates into a private full-length `y` — pre-allocated at
/// plan time — that a chunked second dispatch reduces, the same structure
/// column partitioning needs (§II-C).
pub struct ParSymCsr<'m, I: SpIndex = u32, V: Scalar = f64> {
    matrix: &'m SymCsr<I, V>,
    partition: RowPartition,
    pool: WorkerPool,
    /// `nparts` private y vectors, stored flat (`nparts * n`).
    privates: Vec<V>,
}

impl<'m, I: SpIndex, V: Scalar> ParSymCsr<'m, I, V> {
    /// Plans an nnz-balanced row partition over the stored triangle.
    pub fn new(matrix: &'m SymCsr<I, V>, nthreads: usize) -> Self {
        let partition = RowPartition::for_csr(matrix.lower(), nthreads);
        let pool = WorkerPool::new(partition.nparts());
        let privates = vec![V::zero(); partition.nparts() * matrix.n()];
        ParSymCsr { partition, matrix, pool, privates }
    }
}

impl<I: SpIndex, V: Scalar> ParSpMv<V> for ParSymCsr<'_, I, V> {
    fn nthreads(&self) -> usize {
        self.partition.nparts()
    }

    fn take_telemetry(&mut self) -> Option<PoolTelemetry> {
        self.pool.take_telemetry()
    }

    fn par_spmv(&mut self, x: &[V], y: &mut [V]) {
        let n = self.matrix.n();
        assert_eq!(x.len(), n, "x length must equal n");
        assert_eq!(y.len(), n, "y length must equal n");
        let lower = self.matrix.lower();
        let nparts = self.partition.nparts();
        let partition = &self.partition;
        // Dispatch 1: each thread zeroes its private y, then accumulates
        // its row block plus the mirrored upper-triangle contributions.
        let priv_cell = DisjointSlices::new(&mut self.privates);
        self.pool.run(|tid| {
            // SAFETY: per-thread stripes of the flat buffer are disjoint.
            let y_private = unsafe { priv_cell.range(tid * n..(tid + 1) * n) };
            for v in y_private.iter_mut() {
                *v = V::zero();
            }
            for i in partition.part(tid) {
                let mut acc = V::zero();
                for (j, a) in lower.row_iter(i) {
                    acc += a * x[j];
                    if j != i {
                        y_private[j] += a * x[i];
                    }
                }
                y_private[i] += acc;
            }
        });
        // Dispatch 2: chunked parallel reduction in fixed part order
        // (bit-identical to the serial reduction).
        let privates = &self.privates;
        let y_cell = DisjointSlices::new(y);
        self.pool.run(|tid| {
            let rows = chunk(n, nparts, tid);
            // SAFETY: uniform chunks are disjoint; one tid per chunk.
            let y_chunk = unsafe { y_cell.range(rows.clone()) };
            for (li, i) in rows.enumerate() {
                let mut acc = V::zero();
                for k in 0..nparts {
                    acc += privates[k * n + i];
                }
                y_chunk[li] = acc;
            }
        });
    }
}

#[cfg(test)]
mod tests;
