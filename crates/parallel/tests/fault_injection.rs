//! Fault-injection recovery matrix (requires `--features fault-injection`).
//!
//! Drives scripted faults — worker panics, stalls past the watchdog
//! deadline, thread deaths, and silent chunk corruption — through both
//! parallel execution layers, across thread counts {1, 2, 4, 7}, and
//! asserts the two acceptance properties after every recovery:
//!
//! 1. the result is **bit-identical** to the serial kernel;
//! 2. the executor remains **reusable** (a healthy follow-up call
//!    succeeds and matches serial again).
//!
//! Tests arm their [`FaultPlan`] on the calling thread, so concurrent
//! tests cannot see each other's faults. Injection is deterministic: the
//! supervised tests disable caller participation and key their rules by
//! **chunk** (chunks are claimed dynamically, so a tid-keyed rule could
//! miss if another worker drains the queue first — whichever worker
//! claims the targeted chunk receives the fault); the pool tests key by
//! **tid**, which is deterministic there because each worker always
//! executes exactly its own `tid` slice.

#![cfg(feature = "fault-injection")]

use spmv_core::csr_du::{CsrDu, DuOptions};
use spmv_core::{Coo, Csr, SpMv};
use spmv_parallel::faults::{FaultAction, FaultPlan, FaultSite};
use spmv_parallel::supervised::{
    ChunkKernel, CsrChunks, CsrDuChunks, FaultEvent, PoolError, RecoveryPolicy, SupervisedSpMv,
    WatchdogOpts,
};
use spmv_parallel::{PoolEvent, WorkerPool};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn irregular(nrows: usize, ncols: usize, seed: u64) -> Coo<f64> {
    let mut t: Vec<(usize, usize, f64)> = Vec::new();
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for r in 0..nrows {
        let len = 1 + (next() as usize) % 8;
        for _ in 0..len {
            t.push((r, (next() as usize) % ncols, ((next() % 17) as f64) - 8.0));
        }
    }
    let mut coo = Coo::from_triplets(nrows, ncols, t).unwrap();
    coo.canonicalize();
    coo
}

fn x_for(ncols: usize) -> Vec<f64> {
    (0..ncols).map(|i| ((i % 23) as f64) * 0.37 - 3.0).collect()
}

/// Supervised opts for injection tests: short deadline (stall/death
/// recovery is deadline-gated), caller dedicated to supervision so the
/// targeted worker deterministically claims chunks.
fn injection_opts(policy: RecoveryPolicy) -> WatchdogOpts {
    WatchdogOpts {
        deadline: Duration::from_millis(40),
        policy,
        verify_every: 0,
        caller_participates: false,
    }
}

/// Runs the fault × recovery matrix for one scripted action against the
/// supervised executor and checks both acceptance properties.
fn supervised_recovers_from(action: FaultAction, expect_fires: bool) {
    let coo = irregular(160, 120, 42);
    let csr: Csr<u32, f64> = coo.to_csr();
    let x = x_for(120);
    let mut y_serial = vec![0.0; 160];
    csr.spmv(&x, &mut y_serial);
    for &nthreads in &THREAD_COUNTS {
        let kernel: Arc<dyn ChunkKernel<f64>> =
            Arc::new(CsrChunks::new(Arc::new(csr.clone()), nthreads.max(2) * 2));
        let mut sup =
            SupervisedSpMv::with_opts(kernel, nthreads, injection_opts(RecoveryPolicy::Degrade));
        // Target chunk 0 of dispatch 0: with >= 2 threads some worker
        // necessarily claims it (caller doesn't participate); with one
        // thread no worker exists, the rule cannot fire, and the run must
        // simply stay correct (the watchdog recovers every chunk).
        let armed = FaultPlan::new().inject(FaultSite::chunk(0, 0), action).arm();
        let mut y = vec![-7.0; 160];
        let report = sup.spmv(&x, &mut y).expect("degrade mode recovers");
        assert_eq!(
            y, y_serial,
            "recovered result must be bit-identical ({action:?}, {nthreads} threads)"
        );
        if nthreads >= 2 && expect_fires {
            assert_eq!(armed.fired_count(), 1, "{action:?} must fire once");
            assert!(
                report.degraded(),
                "{action:?} with {nthreads} threads: expected a recorded event, got {:?}",
                report.events
            );
        }
        drop(armed);
        // Reusability: a healthy follow-up call on the same plan.
        let mut y2 = vec![0.0; 160];
        let report2 = sup.spmv(&x, &mut y2).expect("pool reusable after recovery");
        assert_eq!(y2, y_serial, "follow-up call after {action:?}");
        assert!(
            !report2.degraded(),
            "follow-up after {action:?} must be healthy, got {:?}",
            report2.events
        );
    }
}

#[test]
fn supervised_recovers_from_worker_panic() {
    supervised_recovers_from(FaultAction::PanicOnce, true);
}

#[test]
fn supervised_recovers_from_worker_stall() {
    supervised_recovers_from(FaultAction::DelayOnce(Duration::from_millis(150)), true);
}

#[test]
fn supervised_recovers_from_worker_death() {
    supervised_recovers_from(FaultAction::ExitThread, true);
}

#[test]
fn supervised_panic_recovery_reports_event_and_respawn_keeps_strength() {
    let coo = irregular(100, 90, 3);
    let csr: Csr<u32, f64> = coo.to_csr();
    let x = x_for(90);
    let mut y_serial = vec![0.0; 100];
    csr.spmv(&x, &mut y_serial);
    let kernel: Arc<dyn ChunkKernel<f64>> = Arc::new(CsrChunks::new(Arc::new(csr), 6));
    let mut sup = SupervisedSpMv::with_opts(kernel, 3, injection_opts(RecoveryPolicy::Degrade));
    let armed = FaultPlan::new().inject(FaultSite::chunk(0, 0), FaultAction::ExitThread).arm();
    let mut y = vec![0.0; 100];
    let report = sup.spmv(&x, &mut y).expect("degrade");
    assert_eq!(armed.fired_count(), 1);
    assert_eq!(y, y_serial);
    let died = report.events.iter().find_map(|e| match e {
        FaultEvent::WorkerDied { tid, .. } => Some(*tid),
        _ => None,
    });
    let died = died.unwrap_or_else(|| panic!("expected WorkerDied, got {:?}", report.events));
    assert!(
        report
            .events
            .iter()
            .any(|e| matches!(e, FaultEvent::WorkerRespawned { tid } if *tid == died)),
        "dead worker {died} must be respawned: {:?}",
        report.events
    );
    assert!(report.recovered_chunks >= 1);
}

#[test]
fn supervised_self_check_catches_injected_corruption() {
    let coo = irregular(140, 110, 8);
    let csr: Csr<u32, f64> = coo.to_csr();
    let x = x_for(110);
    let mut y_serial = vec![0.0; 140];
    csr.spmv(&x, &mut y_serial);
    let du = CsrDu::from_csr(&csr, &DuOptions::default());
    let kernel: Arc<dyn ChunkKernel<f64>> = Arc::new(CsrDuChunks::new(Arc::new(du), 6));
    let opts = WatchdogOpts {
        verify_every: 1, // check every chunk: corruption cannot hide
        ..injection_opts(RecoveryPolicy::Degrade)
    };
    let mut sup = SupervisedSpMv::with_opts(kernel, 3, opts);
    let armed = FaultPlan::new().inject(FaultSite::chunk(0, 0), FaultAction::CorruptChunk).arm();
    let mut y = vec![0.0; 140];
    let report = sup.spmv(&x, &mut y).expect("degrade replaces corrupted chunk");
    assert_eq!(armed.fired_count(), 1);
    assert_eq!(y, y_serial, "self-check must restore the corrupted chunk");
    assert!(
        report.events.iter().any(|e| matches!(e, FaultEvent::ChunkCorrupted { .. })),
        "events: {:?}",
        report.events
    );
}

#[test]
fn supervised_failfast_returns_typed_errors() {
    let coo = irregular(120, 100, 5);
    let csr: Csr<u32, f64> = coo.to_csr();
    let x = x_for(100);
    let cases: Vec<(FaultAction, fn(&PoolError) -> bool)> = vec![
        (FaultAction::PanicOnce, |e| matches!(e, PoolError::WorkerPanicked { .. })),
        (FaultAction::DelayOnce(Duration::from_millis(200)), |e| {
            matches!(e, PoolError::WorkerStalled { .. })
        }),
        (FaultAction::ExitThread, |e| matches!(e, PoolError::WorkerDied { .. })),
    ];
    for (action, matches_err) in cases {
        let kernel: Arc<dyn ChunkKernel<f64>> = Arc::new(CsrChunks::new(Arc::new(csr.clone()), 4));
        let mut sup =
            SupervisedSpMv::with_opts(kernel, 2, injection_opts(RecoveryPolicy::FailFast));
        let _armed = FaultPlan::new().inject(FaultSite::chunk(0, 0), action).arm();
        let mut y = vec![123.0; 120];
        let err = sup.spmv(&x, &mut y).expect_err("failfast surfaces the fault");
        assert!(matches_err(&err), "{action:?} yielded {err:?}");
        assert_eq!(y, vec![123.0; 120], "failfast must leave y untouched");
    }
}

#[test]
fn supervised_failfast_corruption_error() {
    let coo = irregular(80, 80, 6);
    let csr: Csr<u32, f64> = coo.to_csr();
    let x = x_for(80);
    let kernel: Arc<dyn ChunkKernel<f64>> = Arc::new(CsrChunks::new(Arc::new(csr), 4));
    let opts = WatchdogOpts { verify_every: 1, ..injection_opts(RecoveryPolicy::FailFast) };
    let mut sup = SupervisedSpMv::with_opts(kernel, 2, opts);
    let _armed = FaultPlan::new().inject(FaultSite::chunk(0, 0), FaultAction::CorruptChunk).arm();
    let mut y = vec![0.0; 80];
    let err = sup.spmv(&x, &mut y).expect_err("corruption must fail fast");
    assert!(matches!(err, PoolError::ChunkCorrupted { .. }), "{err:?}");
}

#[test]
fn supervised_repeated_faults_across_calls_stay_correct() {
    // One plan, faults on several consecutive calls: the roster respawn
    // must keep the pool at strength through repeated degradation.
    let coo = irregular(130, 100, 12);
    let csr: Csr<u32, f64> = coo.to_csr();
    let x = x_for(100);
    let mut y_serial = vec![0.0; 130];
    csr.spmv(&x, &mut y_serial);
    let kernel: Arc<dyn ChunkKernel<f64>> = Arc::new(CsrChunks::new(Arc::new(csr), 8));
    let mut sup = SupervisedSpMv::with_opts(kernel, 4, injection_opts(RecoveryPolicy::Degrade));
    let armed = FaultPlan::new()
        .inject(FaultSite::chunk(0, 0), FaultAction::PanicOnce)
        .inject(FaultSite::chunk(1, 3), FaultAction::ExitThread)
        .inject(FaultSite::chunk(2, 7), FaultAction::DelayOnce(Duration::from_millis(120)))
        .arm();
    for call in 0..4 {
        let mut y = vec![0.0; 130];
        sup.spmv(&x, &mut y).expect("degrade");
        assert_eq!(y, y_serial, "call {call}");
    }
    assert_eq!(armed.fired_count(), 3, "all three scripted faults fired");
}

// ---------------------------------------------------------------------
// SpMM (multi-vector) chunks: same fault model, panel outputs
// ---------------------------------------------------------------------

fn x_panel_for(ncols: usize, k: usize) -> Vec<f64> {
    (0..ncols * k).map(|i| ((i % 29) as f64) * 0.23 - 2.0).collect()
}

/// SpMM analogue of [`supervised_recovers_from`]: a fault during a
/// multi-vector chunk must recover under Degrade with a panel
/// bit-identical to the serial SpMM.
fn supervised_spmm_recovers_from(action: FaultAction, expect_fires: bool) {
    let coo = irregular(160, 120, 42);
    let csr: Csr<u32, f64> = coo.to_csr();
    let k = 4;
    let x = x_panel_for(120, k);
    let mut y_serial = vec![0.0; 160 * k];
    csr.spmm(&x, k, &mut y_serial);
    for &nthreads in &THREAD_COUNTS {
        let kernel: Arc<dyn ChunkKernel<f64>> =
            Arc::new(CsrChunks::new(Arc::new(csr.clone()), nthreads.max(2) * 2));
        let mut sup =
            SupervisedSpMv::with_opts(kernel, nthreads, injection_opts(RecoveryPolicy::Degrade));
        let armed = FaultPlan::new().inject(FaultSite::chunk(0, 0), action).arm();
        let mut y = vec![-7.0; 160 * k];
        let report = sup.spmm(&x, k, &mut y).expect("degrade mode recovers");
        assert_eq!(
            y, y_serial,
            "recovered panel must be bit-identical ({action:?}, {nthreads} threads)"
        );
        if nthreads >= 2 && expect_fires {
            assert_eq!(armed.fired_count(), 1, "{action:?} must fire once");
            assert!(report.degraded(), "{action:?}: expected an event, got {:?}", report.events);
        }
        drop(armed);
        // Reusability: a healthy follow-up SpMM on the same plan.
        let mut y2 = vec![0.0; 160 * k];
        let report2 = sup.spmm(&x, k, &mut y2).expect("pool reusable after recovery");
        assert_eq!(y2, y_serial, "follow-up call after {action:?}");
        assert!(!report2.degraded(), "follow-up must be healthy, got {:?}", report2.events);
    }
}

#[test]
fn supervised_spmm_recovers_from_worker_panic() {
    supervised_spmm_recovers_from(FaultAction::PanicOnce, true);
}

#[test]
fn supervised_spmm_recovers_from_worker_stall() {
    supervised_spmm_recovers_from(FaultAction::DelayOnce(Duration::from_millis(150)), true);
}

#[test]
fn supervised_spmm_recovers_from_worker_death() {
    supervised_spmm_recovers_from(FaultAction::ExitThread, true);
}

#[test]
fn supervised_spmm_self_check_catches_injected_corruption() {
    // CorruptChunk flips the first element of the chunk's *panel*; the
    // bit-exact self-check must catch it and restore the serial panel.
    let coo = irregular(140, 110, 8);
    let csr: Csr<u32, f64> = coo.to_csr();
    let k = 3;
    let x = x_panel_for(110, k);
    let mut y_serial = vec![0.0; 140 * k];
    csr.spmm(&x, k, &mut y_serial);
    let du = CsrDu::from_csr(&csr, &DuOptions::default());
    let kernel: Arc<dyn ChunkKernel<f64>> = Arc::new(CsrDuChunks::new(Arc::new(du), 6));
    let opts = WatchdogOpts { verify_every: 1, ..injection_opts(RecoveryPolicy::Degrade) };
    let mut sup = SupervisedSpMv::with_opts(kernel, 3, opts);
    let armed = FaultPlan::new().inject(FaultSite::chunk(0, 0), FaultAction::CorruptChunk).arm();
    let mut y = vec![0.0; 140 * k];
    let report = sup.spmm(&x, k, &mut y).expect("degrade replaces corrupted chunk");
    assert_eq!(armed.fired_count(), 1);
    assert_eq!(y, y_serial, "self-check must restore the corrupted panel");
    assert!(
        report.events.iter().any(|e| matches!(e, FaultEvent::ChunkCorrupted { .. })),
        "events: {:?}",
        report.events
    );
}

#[test]
fn supervised_spmm_failfast_leaves_panel_untouched() {
    let coo = irregular(120, 100, 5);
    let csr: Csr<u32, f64> = coo.to_csr();
    let k = 4;
    let x = x_panel_for(100, k);
    let cases: Vec<(FaultAction, fn(&PoolError) -> bool)> = vec![
        (FaultAction::PanicOnce, |e| matches!(e, PoolError::WorkerPanicked { .. })),
        (FaultAction::DelayOnce(Duration::from_millis(200)), |e| {
            matches!(e, PoolError::WorkerStalled { .. })
        }),
        (FaultAction::ExitThread, |e| matches!(e, PoolError::WorkerDied { .. })),
    ];
    for (action, matches_err) in cases {
        let kernel: Arc<dyn ChunkKernel<f64>> = Arc::new(CsrChunks::new(Arc::new(csr.clone()), 4));
        let mut sup =
            SupervisedSpMv::with_opts(kernel, 2, injection_opts(RecoveryPolicy::FailFast));
        let _armed = FaultPlan::new().inject(FaultSite::chunk(0, 0), action).arm();
        let mut y = vec![123.0; 120 * k];
        let err = sup.spmm(&x, k, &mut y).expect_err("failfast surfaces the fault");
        assert!(matches_err(&err), "{action:?} yielded {err:?}");
        assert_eq!(y, vec![123.0; 120 * k], "failfast must leave the panel untouched");
    }
}

#[test]
fn supervised_spmm_failfast_corruption_error() {
    let coo = irregular(80, 80, 6);
    let csr: Csr<u32, f64> = coo.to_csr();
    let k = 2;
    let x = x_panel_for(80, k);
    let kernel: Arc<dyn ChunkKernel<f64>> = Arc::new(CsrChunks::new(Arc::new(csr), 4));
    let opts = WatchdogOpts { verify_every: 1, ..injection_opts(RecoveryPolicy::FailFast) };
    let mut sup = SupervisedSpMv::with_opts(kernel, 2, opts);
    let _armed = FaultPlan::new().inject(FaultSite::chunk(0, 0), FaultAction::CorruptChunk).arm();
    let mut y = vec![9.5; 80 * k];
    let err = sup.spmm(&x, k, &mut y).expect_err("corruption must fail fast");
    assert!(matches!(err, PoolError::ChunkCorrupted { .. }), "{err:?}");
    assert_eq!(y, vec![9.5; 80 * k], "failfast corruption must leave the panel untouched");
}

// ---------------------------------------------------------------------
// Borrowed-job pool layer
// ---------------------------------------------------------------------

/// Pool deadline for injection tests: short, so dead-worker takeover
/// happens quickly.
fn test_pool(nthreads: usize) -> WorkerPool {
    WorkerPool::with_deadline(nthreads, Duration::from_millis(25))
}

#[test]
fn pool_takes_over_dead_worker_and_respawns() {
    for &nthreads in THREAD_COUNTS.iter().filter(|&&n| n >= 2) {
        let mut pool = test_pool(nthreads);
        let armed = FaultPlan::new().inject(FaultSite::worker(0, 1), FaultAction::ExitThread).arm();
        let hits: Vec<AtomicUsize> = (0..nthreads).map(|_| AtomicUsize::new(0)).collect();
        pool.run(|tid| {
            hits[tid].fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(armed.fired_count(), 1, "nthreads={nthreads}");
        // Every tid's slice ran exactly once — tid 1's via caller takeover.
        for (tid, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "tid {tid}, nthreads={nthreads}");
        }
        let events = pool.take_events();
        assert!(
            events.iter().any(|e| matches!(e, PoolEvent::WorkerDied { tid: 1, .. })),
            "nthreads={nthreads}: {events:?}"
        );
        drop(armed);
        // Reuse: next dispatch respawns the dead worker and runs clean.
        let hits2: Vec<AtomicUsize> = (0..nthreads).map(|_| AtomicUsize::new(0)).collect();
        pool.run(|tid| {
            hits2[tid].fetch_add(1, Ordering::SeqCst);
        });
        for (tid, h) in hits2.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "reuse tid {tid}, nthreads={nthreads}");
        }
        let events = pool.take_events();
        assert!(
            events.iter().any(|e| matches!(e, PoolEvent::WorkerRespawned { tid: 1 })),
            "nthreads={nthreads}: {events:?}"
        );
    }
}

#[test]
fn pool_flags_slow_worker_but_waits_for_it() {
    let mut pool = test_pool(3);
    let _armed = FaultPlan::new()
        .inject(FaultSite::worker(0, 2), FaultAction::DelayOnce(Duration::from_millis(100)))
        .arm();
    let hits: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
    pool.run(|tid| {
        hits[tid].fetch_add(1, Ordering::SeqCst);
    });
    // The stalled worker was waited for (borrowed job: abandonment would
    // be unsound), so its slice still ran exactly once.
    for (tid, h) in hits.iter().enumerate() {
        assert_eq!(h.load(Ordering::SeqCst), 1, "tid {tid}");
    }
    let events = pool.take_events();
    assert!(events.iter().any(|e| matches!(e, PoolEvent::SlowWorker { tid: 2, .. })), "{events:?}");
}

#[test]
fn pool_heartbeats_advance_for_healthy_workers() {
    let mut pool = test_pool(4);
    let before = pool.heartbeats();
    pool.run(|_tid| {});
    let after = pool.heartbeats();
    for tid in 1..4 {
        assert!(
            after[tid - 1] >= before[tid - 1] + 2,
            "worker {tid} heartbeat must advance (pickup + completion)"
        );
    }
}

#[test]
fn par_executor_survives_worker_death_mid_spmv() {
    // End-to-end through a real executor: kill a worker during a
    // parallel CSR SpMV; the result must still be bit-identical and the
    // plan reusable. Uses the env-independent pool inside ParCsr, so the
    // deadline is the default — the takeover happens within ~1 s.
    let coo = irregular(200, 150, 21);
    let csr: Csr<u32, f64> = coo.to_csr();
    let x = x_for(150);
    let mut y_serial = vec![0.0; 200];
    csr.spmv(&x, &mut y_serial);
    let mut par = spmv_parallel::ParCsr::new(&csr, 4);
    let armed = FaultPlan::new().inject(FaultSite::worker(0, 2), FaultAction::ExitThread).arm();
    let mut y = vec![0.0; 200];
    use spmv_parallel::ParSpMv;
    par.par_spmv(&x, &mut y);
    assert_eq!(armed.fired_count(), 1);
    assert_eq!(y, y_serial, "takeover must reproduce the serial result");
    drop(armed);
    let mut y2 = vec![0.0; 200];
    par.par_spmv(&x, &mut y2);
    assert_eq!(y2, y_serial, "plan reusable after worker death");
}

#[test]
fn spmspv_bucket_plan_survives_worker_death_in_every_phase() {
    // The bucket plan issues four dispatches per call (count, scatter,
    // accumulate, gather); each slice is documented idempotent, so a
    // worker death in any phase must recover bit-identically. Dispatch
    // ids on a fresh pool are 0..4, which lets the plan target phases.
    use spmv_core::spmspv::SpMSpV;
    use spmv_core::{Csc, SparseVec};
    use spmv_parallel::ParSpMSpV;
    let coo = irregular(180, 140, 33);
    let csr: Csr<u32, f64> = coo.to_csr();
    let csc = Csc::from_csr(&csr).unwrap();
    let ind: Vec<u32> = (0..140).step_by(4).collect();
    let val: Vec<f64> = ind.iter().map(|&i| 0.5 + (i % 5) as f64).collect();
    let x = SparseVec::new(140, ind, val).unwrap();
    let reference = csc.spmspv(&x).unwrap();
    for phase in 0..4u64 {
        let mut plan = ParSpMSpV::new(&csc, 4);
        let armed =
            FaultPlan::new().inject(FaultSite::worker(phase, 2), FaultAction::ExitThread).arm();
        let got = plan.spmspv(&x).expect("recovered call succeeds");
        assert_eq!(armed.fired_count(), 1, "phase {phase}");
        assert_eq!(got, reference, "phase {phase}: takeover must be bit-identical");
        let events = plan.take_events();
        assert!(
            events.iter().any(|e| matches!(e, PoolEvent::WorkerDied { tid: 2, .. })),
            "phase {phase}: {events:?}"
        );
        drop(armed);
        // Reusability: a healthy follow-up on the same plan (the dead
        // worker is respawned at its next dispatch).
        assert_eq!(plan.spmspv(&x).unwrap(), reference, "phase {phase}: reuse");
    }
}

#[test]
fn spmspv_masked_plan_survives_worker_death() {
    use spmv_core::spmspv::SpMSpV;
    use spmv_core::SparseVec;
    use spmv_parallel::ParMaskedSpMSpV;
    let coo = irregular(180, 140, 34);
    let csr: Csr<u32, f64> = coo.to_csr();
    let ind: Vec<u32> = (0..140).step_by(3).collect();
    let val: Vec<f64> = ind.iter().map(|&i| 1.0 + (i % 3) as f64 * 0.5).collect();
    let x = SparseVec::new(140, ind, val).unwrap();
    let reference = csr.spmspv(&x).unwrap();
    for phase in 0..2u64 {
        let mut plan = ParMaskedSpMSpV::new(&csr, 4);
        let armed =
            FaultPlan::new().inject(FaultSite::worker(phase, 1), FaultAction::ExitThread).arm();
        let got = plan.spmspv(&x).expect("recovered call succeeds");
        assert_eq!(armed.fired_count(), 1, "phase {phase}");
        assert_eq!(got, reference, "phase {phase}: takeover must be bit-identical");
        drop(armed);
        assert_eq!(plan.spmspv(&x).unwrap(), reference, "phase {phase}: reuse");
    }
}
