//! HYB (hybrid ELL + COO) — the classic fix for Ellpack's padding blowup.
//!
//! Rows are split at a width threshold: the first `k` non-zeros of every
//! row go into a regular ELL block (vectorizable, fixed stride), the
//! remainder spills into a COO tail. The threshold is chosen so that a
//! bounded fraction of slots is padding — keeping ELL's regular access
//! without paying for skewed row-length distributions (the §III-A
//! "matrices with a large number of rows with small length" problem).

use crate::coo::Coo;
use crate::csr::Csr;
use crate::error::Result;
use crate::index::SpIndex;
use crate::scalar::Scalar;
use crate::spmv::{FormatKind, SpMv};

/// A sparse matrix in hybrid ELL/COO format.
#[derive(Debug, Clone, PartialEq)]
pub struct Hyb<I: SpIndex = u32, V: Scalar = f64> {
    nrows: usize,
    ncols: usize,
    nnz: usize,
    /// ELL width (non-zeros per row stored in the regular part).
    width: usize,
    /// ELL columns, row-major `nrows x width`; padding slots hold 0.
    ell_col: Vec<I>,
    /// ELL values; padding slots hold 0.0.
    ell_val: Vec<V>,
    /// COO tail (row, col, value), row-major sorted.
    tail: Vec<(I, I, V)>,
}

impl<I: SpIndex, V: Scalar> Hyb<I, V> {
    /// Builds HYB with an explicit ELL width.
    pub fn with_width(csr: &Csr<I, V>, width: usize) -> Result<Hyb<I, V>> {
        let nrows = csr.nrows();
        let mut ell_col = vec![I::from_usize(0)?; nrows * width];
        let mut ell_val = vec![V::zero(); nrows * width];
        let mut tail = Vec::new();
        for r in 0..nrows {
            for (k, (c, v)) in csr.row_iter(r).enumerate() {
                if k < width {
                    ell_col[r * width + k] = I::from_usize(c)?;
                    ell_val[r * width + k] = v;
                } else {
                    tail.push((I::from_usize(r)?, I::from_usize(c)?, v));
                }
            }
        }
        Ok(Hyb { nrows, ncols: csr.ncols(), nnz: csr.nnz(), width, ell_col, ell_val, tail })
    }

    /// Builds HYB choosing the width automatically: the largest `k` such
    /// that at least `fill_target` of the `nrows x k` ELL slots would be
    /// real non-zeros (the standard heuristic; 2/3 is common).
    pub fn from_csr(csr: &Csr<I, V>, fill_target: f64) -> Result<Hyb<I, V>> {
        assert!((0.0..=1.0).contains(&fill_target), "fill_target must be a fraction");
        let nrows = csr.nrows().max(1);
        let max_w = (0..csr.nrows()).map(|r| csr.row_nnz(r)).max().unwrap_or(0);
        // Histogram of row lengths -> occupancy of column k across rows.
        let mut len_count = vec![0usize; max_w + 1];
        for r in 0..csr.nrows() {
            len_count[csr.row_nnz(r)] += 1;
        }
        // rows_with_len_ge[k] = rows whose length > k (occupy slot k).
        let mut occupied = vec![0usize; max_w + 1];
        let mut acc = 0usize;
        for k in (0..=max_w).rev() {
            if k < max_w {
                acc += len_count[k + 1];
            }
            occupied[k] = acc;
        }
        let mut width = 0usize;
        let mut filled = 0usize;
        for (k, occ) in occupied.iter().enumerate().take(max_w) {
            filled += occ;
            if filled as f64 / (nrows * (k + 1)) as f64 >= fill_target {
                width = k + 1;
            }
        }
        Self::with_width(csr, width)
    }

    /// ELL width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Non-zeros stored in the COO tail.
    pub fn tail_len(&self) -> usize {
        self.tail.len()
    }

    /// Fraction of ELL slots holding real non-zeros.
    pub fn ell_fill(&self) -> f64 {
        if self.ell_val.is_empty() {
            return 1.0;
        }
        (self.nnz - self.tail.len()) as f64 / self.ell_val.len() as f64
    }

    /// Converts back to COO.
    pub fn to_coo(&self) -> Coo<V> {
        let mut coo = Coo::with_capacity(self.nrows, self.ncols, self.nnz);
        for r in 0..self.nrows {
            for k in 0..self.width {
                let v = self.ell_val[r * self.width + k];
                if v != V::zero() {
                    coo.push(r, self.ell_col[r * self.width + k].index(), v)
                        .expect("in bounds by construction");
                }
            }
        }
        for &(r, c, v) in &self.tail {
            coo.push(r.index(), c.index(), v).expect("in bounds by construction");
        }
        coo
    }
}

impl<I: SpIndex, V: Scalar> SpMv<V> for Hyb<I, V> {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn nnz(&self) -> usize {
        self.nnz
    }
    fn kind(&self) -> FormatKind {
        FormatKind::Ell // reported as the ELL family
    }
    fn size_bytes(&self) -> usize {
        self.ell_col.len() * I::BYTES
            + self.ell_val.len() * V::BYTES
            + self.tail.len() * (2 * I::BYTES + V::BYTES)
    }

    fn spmv(&self, x: &[V], y: &mut [V]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        // Regular part.
        for (r, yv) in y.iter_mut().enumerate() {
            let mut acc = V::zero();
            let base = r * self.width;
            for k in 0..self.width {
                acc += self.ell_val[base + k] * x[self.ell_col[base + k].index()];
            }
            *yv = acc;
        }
        // Irregular tail.
        for &(r, c, v) in &self.tail {
            y[r.index()] += v * x[c.index()];
        }
    }

    fn validate(&self) -> std::result::Result<(), crate::error::SparseError> {
        use crate::error::SparseError;
        if self.ell_col.len() != self.nrows * self.width
            || self.ell_val.len() != self.nrows * self.width
        {
            return Err(SparseError::MalformedPointers(format!(
                "HYB ELL arrays must be nrows * width = {} entries (col {}, val {})",
                self.nrows * self.width,
                self.ell_col.len(),
                self.ell_val.len()
            )));
        }
        let mut stored = self.tail.len();
        for r in 0..self.nrows {
            for k in 0..self.width {
                let c = self.ell_col[r * self.width + k].index();
                if c >= self.ncols {
                    return Err(SparseError::IndexOutOfBounds {
                        row: r,
                        col: c,
                        nrows: self.nrows,
                        ncols: self.ncols,
                    });
                }
                if self.ell_val[r * self.width + k] != V::zero() {
                    stored += 1;
                }
            }
        }
        for &(r, c, _) in &self.tail {
            if r.index() >= self.nrows || c.index() >= self.ncols {
                return Err(SparseError::IndexOutOfBounds {
                    row: r.index(),
                    col: c.index(),
                    nrows: self.nrows,
                    ncols: self.ncols,
                });
            }
        }
        // The ELL part may carry explicit zeros from the source CSR, so
        // `stored` can undercount nnz but never exceed it.
        if stored > self.nnz {
            return Err(SparseError::InvalidFormat(format!(
                "recorded nnz {} below stored non-zeros {stored}",
                self.nnz
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::paper_matrix;

    /// Skewed matrix: one heavy row, many light ones.
    fn skewed() -> Coo<f64> {
        let mut t = Vec::new();
        for r in 0..100usize {
            t.push((r, r, 1.0));
        }
        for j in 0..50usize {
            t.push((7, (j * 2 + 1) % 100, 2.0));
        }
        let mut coo = Coo::from_triplets(100, 100, t).unwrap();
        coo.canonicalize();
        coo
    }

    #[test]
    fn auto_width_bounds_padding() {
        let coo = skewed();
        let h = Hyb::from_csr(&coo.to_csr(), 2.0 / 3.0).unwrap();
        assert!(h.width() <= 2, "width {} should stay small", h.width());
        assert!(h.ell_fill() >= 0.5, "fill {}", h.ell_fill());
        assert!(h.tail_len() > 0, "heavy row must spill");
    }

    #[test]
    fn spmv_matches_reference() {
        for coo in [skewed(), paper_matrix()] {
            let csr = coo.to_csr();
            for width in [0, 1, 2, 4, 16] {
                let h = Hyb::with_width(&csr, width).unwrap();
                let x: Vec<f64> = (0..coo.ncols()).map(|i| 0.5 * i as f64 - 1.0).collect();
                let mut y = vec![9.0; coo.nrows()];
                let mut y_ref = vec![0.0; coo.nrows()];
                h.spmv(&x, &mut y);
                coo.spmv_reference(&x, &mut y_ref);
                for (a, b) in y.iter().zip(&y_ref) {
                    assert!((a - b).abs() < 1e-12, "width {width}");
                }
            }
        }
    }

    #[test]
    fn roundtrip() {
        let coo = skewed();
        let h = Hyb::from_csr(&coo.to_csr(), 0.66).unwrap();
        let mut back = h.to_coo();
        back.canonicalize();
        assert_eq!(back.entries(), coo.entries());
    }

    #[test]
    fn width_zero_is_pure_coo() {
        let coo = paper_matrix();
        let h = Hyb::with_width(&coo.to_csr(), 0).unwrap();
        assert_eq!(h.tail_len(), coo.nnz());
        let x = vec![1.0; 6];
        let mut y = vec![0.0; 6];
        let mut y_ref = vec![0.0; 6];
        h.spmv(&x, &mut y);
        coo.spmv_reference(&x, &mut y_ref);
        assert_eq!(y, y_ref);
    }

    #[test]
    fn hyb_beats_ell_on_skewed_size() {
        let coo = skewed();
        let csr = coo.to_csr();
        let ell = crate::ell::Ell::from_csr(&csr).unwrap();
        let h = Hyb::from_csr(&csr, 0.66).unwrap();
        assert!(
            SpMv::<f64>::size_bytes(&h) < SpMv::<f64>::size_bytes(&ell) / 5,
            "hyb {} vs ell {}",
            SpMv::<f64>::size_bytes(&h),
            SpMv::<f64>::size_bytes(&ell)
        );
    }

    #[test]
    fn empty_matrix() {
        let coo: Coo<f64> = Coo::new(3, 3);
        let h = Hyb::from_csr(&coo.to_csr(), 0.66).unwrap();
        assert_eq!(h.width(), 0);
        let mut y = vec![1.0; 3];
        h.spmv(&[1.0; 3], &mut y);
        assert_eq!(y, vec![0.0; 3]);
    }
}
