//! Error type shared by all format constructors and validators.

use std::fmt;

/// Errors produced while constructing or validating sparse matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// An entry's row or column lies outside the declared matrix dimensions.
    IndexOutOfBounds {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
        /// Declared number of rows.
        nrows: usize,
        /// Declared number of columns.
        ncols: usize,
    },
    /// A CSR/CSC `row_ptr`-style array is not monotonically non-decreasing,
    /// does not start at zero, or does not end at `nnz`.
    MalformedPointers(String),
    /// Column indices within a row are not strictly increasing (required by
    /// the delta-encoding formats).
    UnsortedIndices {
        /// Row in which the violation was found.
        row: usize,
    },
    /// An index value does not fit in the requested index type width.
    IndexOverflow {
        /// The value that did not fit.
        value: usize,
        /// Bit width of the target index type.
        width_bits: u32,
    },
    /// A dimension mismatch between a matrix and a vector in SpMV, or
    /// between two matrices.
    DimensionMismatch(String),
    /// The matrix contains duplicate entries where a format requires
    /// canonical (deduplicated) input.
    DuplicateEntry {
        /// Row of the duplicated entry.
        row: usize,
        /// Column of the duplicated entry.
        col: usize,
    },
    /// Input data could not be parsed (MatrixMarket and friends).
    Parse(String),
    /// A format-specific structural constraint was violated.
    InvalidFormat(String),
    /// A stored checksum does not match the data that was read: the input
    /// was corrupted (bit rot, truncation splice, hostile tampering).
    ChecksumMismatch {
        /// Which part of the container failed verification (e.g. `"values"`).
        section: String,
        /// Checksum recorded in the container.
        stored: u32,
        /// Checksum recomputed over the bytes actually read.
        computed: u32,
    },
    /// A container version newer than this build understands.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// Highest version this build can read.
        max_supported: u16,
    },
    /// A cross-kernel verification found a result element outside the
    /// ULP tolerance: the compressed kernel and the CSR baseline disagree
    /// beyond what summation-order differences can explain.
    VerificationFailed {
        /// Row of the first out-of-tolerance element.
        row: usize,
        /// What disagreed and by how much (values and ULP distance).
        detail: String,
    },
    /// A caller-supplied argument is outside the domain an operation can
    /// meaningfully handle (e.g. a zero-iteration measurement request) —
    /// rejected up front instead of silently producing NaN/inf results.
    InvalidArgument(String),
    /// An untrusted header declared a size exceeding the configured
    /// [`LoadLimits`](crate::io::LoadLimits) — refused *before* allocating.
    ResourceLimit {
        /// Which quantity blew the limit (e.g. `"nnz"`, `"payload bytes"`).
        what: String,
        /// The size the input declared.
        requested: u64,
        /// The configured ceiling it exceeded.
        limit: u64,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds { row, col, nrows, ncols } => {
                write!(f, "entry ({row}, {col}) outside matrix dimensions {nrows}x{ncols}")
            }
            SparseError::MalformedPointers(msg) => write!(f, "malformed pointer array: {msg}"),
            SparseError::UnsortedIndices { row } => {
                write!(f, "column indices in row {row} are not strictly increasing")
            }
            SparseError::IndexOverflow { value, width_bits } => {
                write!(f, "index value {value} does not fit in {width_bits} bits")
            }
            SparseError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            SparseError::DuplicateEntry { row, col } => {
                write!(f, "duplicate entry at ({row}, {col})")
            }
            SparseError::Parse(msg) => write!(f, "parse error: {msg}"),
            SparseError::InvalidFormat(msg) => write!(f, "invalid format: {msg}"),
            SparseError::ChecksumMismatch { section, stored, computed } => write!(
                f,
                "checksum mismatch in {section}: stored {stored:#010x}, computed {computed:#010x}"
            ),
            SparseError::UnsupportedVersion { found, max_supported } => write!(
                f,
                "unsupported container version {found} (this build reads up to {max_supported})"
            ),
            SparseError::VerificationFailed { row, detail } => {
                write!(f, "verification failed at row {row}: {detail}")
            }
            SparseError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            SparseError::ResourceLimit { what, requested, limit } => {
                write!(f, "input declares {what} = {requested}, exceeding the load limit {limit}")
            }
        }
    }
}

impl std::error::Error for SparseError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, SparseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SparseError::IndexOutOfBounds { row: 7, col: 9, nrows: 5, ncols: 5 };
        let s = e.to_string();
        assert!(s.contains("(7, 9)") && s.contains("5x5"));

        let e = SparseError::IndexOverflow { value: 70000, width_bits: 16 };
        assert!(e.to_string().contains("70000"));

        let e = SparseError::UnsortedIndices { row: 3 };
        assert!(e.to_string().contains("row 3"));

        let e = SparseError::ChecksumMismatch {
            section: "values".into(),
            stored: 0xDEADBEEF,
            computed: 0x12345678,
        };
        let s = e.to_string();
        assert!(s.contains("values") && s.contains("0xdeadbeef") && s.contains("0x12345678"));

        let e = SparseError::UnsupportedVersion { found: 7, max_supported: 2 };
        assert!(e.to_string().contains('7') && e.to_string().contains('2'));

        let e = SparseError::ResourceLimit { what: "nnz".into(), requested: 1 << 60, limit: 1024 };
        let s = e.to_string();
        assert!(s.contains("nnz") && s.contains("1024"));

        let e = SparseError::VerificationFailed { row: 17, detail: "y=1 vs 2 (big)".into() };
        let s = e.to_string();
        assert!(s.contains("row 17") && s.contains("big"));

        let e = SparseError::InvalidArgument("iters must be nonzero".into());
        assert!(e.to_string().contains("iters must be nonzero"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }
}
