//! Sparse-vector SpMV (SpMSpV): `y = A·x` where both `x` and `y` are
//! sparse vectors.
//!
//! The paper's formats assume a dense `x`; graph frontiers (BFS) and
//! convergence-masked iterations (PageRank deltas, masked inference) hand
//! the kernel an `x` with a handful of nonzeros, where touching all of `A`
//! wastes almost every byte streamed. This module provides:
//!
//! * [`SparseVec`] — the sparse-vector type shared by all SpMSpV paths.
//!   **Invariants:** indices are strictly increasing (sorted, duplicate
//!   free), every index is `< dim`, and `ind`/`val` have equal length.
//!   Constructors validate; kernels rely on the invariants.
//! * [`SpMSpV`] — the trait (sparse x in, sparse y out), implemented for
//!   [`Csc`] (column-gather scatter: only active columns are touched) and
//!   [`Csr`] (masked fallback: every row is scanned, but only entries
//!   whose column is active contribute — profitable when `A` is only
//!   available row-major).
//! * [`spmspv_bucketed`] — the serial form of the two-phase *bucket*
//!   algorithm the parallel layer uses. Output rows are partitioned into
//!   `nbuckets` contiguous buckets. Phase one counts, per (thread, bucket),
//!   the matrix entries each thread's slice of active columns contributes;
//!   an exclusive prefix sum turns the counts into disjoint ranges of a
//!   bucket-major `(row, value)` pair array. Phase two scatters the pairs
//!   (no synchronization: every (thread, bucket) range is disjoint), then
//!   accumulates each bucket independently into the output.
//!
//! ## Determinism
//!
//! All paths accumulate each output row's contributions in ascending
//! active-column order: the scatter walks active columns in `SparseVec`
//! index order; the bucket pair array keeps that order within a bucket
//! because thread slices partition the active columns contiguously and the
//! prefix sum lays the slices out in thread order; the masked CSR path
//! walks each row's (sorted) columns. Results are therefore **bit-identical
//! across paths, bucket counts, and thread counts**. The densify-then-SpMV
//! baseline performs the same sums interleaved with `±0.0` products from
//! inactive columns, which (absent underflow) leave the accumulator bits
//! unchanged — so it, too, matches bit-for-bit on the shared support.
//!
//! ## Output support
//!
//! The support of `y` is *structural*: a row is present iff some active
//! column stores an entry in it, even when the accumulated value cancels
//! to exactly `0.0`. This keeps the support identical across every path
//! (a numeric filter would make it depend on summation grouping).
//!
//! ## Density crossover
//!
//! SpMSpV does `O(nnz(active cols))` work but random-scatters into `y`;
//! dense SpMV streams all of `A` at full bandwidth. Above some input
//! density the dense kernel wins. [`choose_path`] implements the switch:
//! densities `>=` the crossover run dense, below it run the sparse path.
//! [`DENSE_CROSSOVER_DENSITY`] is a conservative host-independent default;
//! the `reproduce graph` harness measures the actual crossover per matrix
//! and records it in BENCH.json (see EXPERIMENTS.md). Because of the
//! bit-identity above, the switch is purely a performance decision — it
//! never changes results.

use crate::csc::Csc;
use crate::csr::Csr;
use crate::error::{Result, SparseError};
use crate::index::SpIndex;
use crate::scalar::Scalar;
use crate::spmv::SpMv;

/// A sparse vector: sorted unique indices plus matching values.
///
/// See the [module docs](self) for the invariants. `ind` is fixed at
/// `u32` to match the workspace's default stored-index width.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVec<V: Scalar = f64> {
    dim: usize,
    ind: Vec<u32>,
    val: Vec<V>,
}

impl<V: Scalar> SparseVec<V> {
    /// Builds a sparse vector, validating all invariants.
    pub fn new(dim: usize, ind: Vec<u32>, val: Vec<V>) -> Result<Self> {
        let v = SparseVec { dim, ind, val };
        v.validate()?;
        Ok(v)
    }

    /// The empty vector of dimension `dim`.
    pub fn empty(dim: usize) -> Self {
        SparseVec { dim, ind: Vec::new(), val: Vec::new() }
    }

    /// A single-entry vector (e.g. a BFS source frontier).
    pub fn single(dim: usize, i: usize, v: V) -> Result<Self> {
        Self::new(dim, vec![u32::from_usize(i)?], vec![v])
    }

    /// Builds from a dense slice, keeping entries that compare unequal to
    /// zero (both `0.0` and `-0.0` are dropped; NaN is kept).
    pub fn from_dense(x: &[V]) -> Self {
        let mut ind = Vec::new();
        let mut val = Vec::new();
        for (i, &v) in x.iter().enumerate() {
            if v != V::zero() {
                ind.push(i as u32);
                val.push(v);
            }
        }
        SparseVec { dim: x.len(), ind, val }
    }

    /// Logical dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.ind.len()
    }

    /// `true` when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.ind.is_empty()
    }

    /// The sorted index array.
    pub fn indices(&self) -> &[u32] {
        &self.ind
    }

    /// The value array, parallel to [`SparseVec::indices`].
    pub fn values(&self) -> &[V] {
        &self.val
    }

    /// Stored-entry fraction `nnz / dim` (`0.0` for a zero-dimensional
    /// vector).
    pub fn density(&self) -> f64 {
        if self.dim == 0 {
            0.0
        } else {
            self.ind.len() as f64 / self.dim as f64
        }
    }

    /// Iterates `(index, value)` pairs in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, V)> + '_ {
        self.ind.iter().zip(&self.val).map(|(&i, &v)| (i as usize, v))
    }

    /// Expands to a dense vector of length `dim`.
    pub fn densify(&self) -> Vec<V> {
        let mut out = vec![V::zero(); self.dim];
        for (i, v) in self.iter() {
            out[i] = v;
        }
        out
    }

    /// Checks the invariants: strictly increasing in-bounds indices and
    /// matching array lengths.
    pub fn validate(&self) -> Result<()> {
        if self.ind.len() != self.val.len() {
            return Err(SparseError::DimensionMismatch(format!(
                "sparse vector ind/val length mismatch: {} vs {}",
                self.ind.len(),
                self.val.len()
            )));
        }
        let mut prev: Option<u32> = None;
        for &i in &self.ind {
            if (i as usize) >= self.dim {
                return Err(SparseError::IndexOutOfBounds {
                    row: i as usize,
                    col: 0,
                    nrows: self.dim,
                    ncols: 1,
                });
            }
            if let Some(p) = prev {
                if i <= p {
                    return Err(SparseError::UnsortedIndices { row: i as usize });
                }
            }
            prev = Some(i);
        }
        Ok(())
    }
}

/// Sparse-vector SpMV: `y = A·x` with sparse `x` and sparse `y`.
///
/// The output support is structural and results are bit-identical across
/// implementations — see the [module docs](self).
pub trait SpMSpV<V: Scalar>: SpMv<V> {
    /// Multiplies by a sparse vector, returning a sparse result.
    ///
    /// Errors with [`SparseError::DimensionMismatch`] when
    /// `x.dim() != self.ncols()`.
    fn spmspv(&self, x: &SparseVec<V>) -> Result<SparseVec<V>>;
}

fn check_x_dim<V: Scalar>(a: &dyn SpMv<V>, x: &SparseVec<V>) -> Result<()> {
    if x.dim() != a.ncols() {
        return Err(SparseError::DimensionMismatch(format!(
            "spmspv: x dim {} != ncols {}",
            x.dim(),
            a.ncols()
        )));
    }
    Ok(())
}

impl<I: SpIndex, V: Scalar> SpMSpV<V> for Csc<I, V> {
    /// Reference column-gather scatter: walk active columns in index
    /// order, accumulate into a dense scratch, collect the structurally
    /// touched rows by an ascending scan (so the output is sorted and
    /// duplicate free by construction).
    fn spmspv(&self, x: &SparseVec<V>) -> Result<SparseVec<V>> {
        check_x_dim(self, x)?;
        let nrows = self.nrows();
        let mut acc = vec![V::zero(); nrows];
        let mut hit = vec![false; nrows];
        let (col_ptr, row_ind, values) = (self.col_ptr(), self.row_ind(), self.values());
        for (c, xv) in x.iter() {
            for j in col_ptr[c].index()..col_ptr[c + 1].index() {
                let r = row_ind[j].index();
                acc[r] += values[j] * xv;
                hit[r] = true;
            }
        }
        let mut ind = Vec::new();
        let mut val = Vec::new();
        for (r, &h) in hit.iter().enumerate() {
            if h {
                ind.push(r as u32);
                val.push(acc[r]);
            }
        }
        Ok(SparseVec { dim: nrows, ind, val })
    }
}

impl<I: SpIndex, V: Scalar> SpMSpV<V> for Csr<I, V> {
    /// Masked-CSR fallback: densify `x` plus an active-column mask, then
    /// scan every row accumulating only masked entries. Row support is
    /// structural (any masked entry, whatever its value). Each row sums
    /// in ascending column order, matching the CSC paths bit-for-bit.
    fn spmspv(&self, x: &SparseVec<V>) -> Result<SparseVec<V>> {
        check_x_dim(self, x)?;
        let mut xd = vec![V::zero(); self.ncols()];
        let mut active = vec![false; self.ncols()];
        for (c, xv) in x.iter() {
            xd[c] = xv;
            active[c] = true;
        }
        let mut ind = Vec::new();
        let mut val = Vec::new();
        for r in 0..self.nrows() {
            let mut acc = V::zero();
            let mut touched = false;
            for (c, v) in self.row_iter(r) {
                if active[c] {
                    acc += v * xd[c];
                    touched = true;
                }
            }
            if touched {
                ind.push(r as u32);
                val.push(acc);
            }
        }
        Ok(SparseVec { dim: self.nrows(), ind, val })
    }
}

/// Serial two-phase bucket SpMSpV over CSC — the algorithm the parallel
/// plan runs, with one "thread". Exists so tests can pin bucket counts:
/// the result is bit-identical to [`SpMSpV::spmspv`] for every
/// `nbuckets >= 1` (see the module docs for why).
pub fn spmspv_bucketed<I: SpIndex, V: Scalar>(
    m: &Csc<I, V>,
    x: &SparseVec<V>,
    nbuckets: usize,
) -> Result<SparseVec<V>> {
    check_x_dim(m, x)?;
    let nrows = m.nrows();
    let nb = nbuckets.clamp(1, nrows.max(1));
    let bucket_rows = nrows.div_ceil(nb).max(1);
    let (col_ptr, row_ind, values) = (m.col_ptr(), m.row_ind(), m.values());

    // Phase one: count pairs per bucket, prefix-sum to disjoint ranges.
    let mut counts = vec![0usize; nb];
    for (c, _) in x.iter() {
        for j in col_ptr[c].index()..col_ptr[c + 1].index() {
            counts[row_ind[j].index() / bucket_rows] += 1;
        }
    }
    let mut offs = vec![0usize; nb + 1];
    for b in 0..nb {
        offs[b + 1] = offs[b] + counts[b];
    }

    // Phase two: scatter (row, value) pairs into bucket-major order, then
    // accumulate each bucket independently.
    let total = offs[nb];
    let mut pair_rows = vec![0u32; total];
    let mut pair_vals = vec![V::zero(); total];
    let mut cursor = offs[..nb].to_vec();
    for (c, xv) in x.iter() {
        for j in col_ptr[c].index()..col_ptr[c + 1].index() {
            let r = row_ind[j].index();
            let p = cursor[r / bucket_rows];
            cursor[r / bucket_rows] = p + 1;
            pair_rows[p] = r as u32;
            pair_vals[p] = values[j] * xv;
        }
    }
    let mut acc = vec![V::zero(); nrows];
    let mut hit = vec![false; nrows];
    let mut ind = Vec::new();
    let mut val = Vec::new();
    for b in 0..nb {
        for p in offs[b]..offs[b + 1] {
            let r = pair_rows[p] as usize;
            acc[r] += pair_vals[p];
            hit[r] = true;
        }
        let row_end = ((b + 1) * bucket_rows).min(nrows);
        for r in b * bucket_rows..row_end {
            if hit[r] {
                ind.push(r as u32);
                val.push(acc[r]);
            }
        }
    }
    Ok(SparseVec { dim: nrows, ind, val })
}

/// The densify-then-SpMV baseline: expands `x` and runs the format's dense
/// kernel. The differential tests compare every sparse path against this.
pub fn densify_spmv<V: Scalar>(a: &dyn SpMv<V>, x: &SparseVec<V>) -> Result<Vec<V>> {
    check_x_dim(a, x)?;
    let xd = x.densify();
    let mut y = vec![V::zero(); a.nrows()];
    a.spmv(&xd, &mut y);
    Ok(y)
}

/// Host-independent default for the SpMSpV-vs-dense switch: inputs at or
/// above this density run the dense kernel. The measured per-matrix
/// crossover (BENCH.json `spmspv` section) is typically higher on this
/// corpus; this default only has to be *safe*, not optimal.
pub const DENSE_CROSSOVER_DENSITY: f64 = 0.25;

/// Which kernel served (or would serve) an SpMSpV request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpMSpVPath {
    /// Two-phase bucket scatter over CSC.
    CscBucket,
    /// Masked accumulation over CSR.
    MaskedCsr,
    /// Densify and run the dense SpMV kernel.
    Dense,
}

impl SpMSpVPath {
    /// Stable lowercase name, as recorded in BENCH.json.
    pub fn as_str(&self) -> &'static str {
        match self {
            SpMSpVPath::CscBucket => "csc-bucket",
            SpMSpVPath::MaskedCsr => "masked-csr",
            SpMSpVPath::Dense => "dense",
        }
    }
}

/// The density crossover switch (see the module docs): sparse path below
/// `crossover`, dense at or above it. Bit-identity across paths makes
/// this purely a performance decision.
pub fn choose_path(density: f64, crossover: f64) -> SpMSpVPath {
    if density >= crossover {
        SpMSpVPath::Dense
    } else {
        SpMSpVPath::CscBucket
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::examples::paper_matrix;

    fn fixtures() -> (Csr<u32, f64>, Csc<u32, f64>) {
        let csr = paper_matrix().to_csr();
        let csc = Csc::from_csr(&csr).unwrap();
        (csr, csc)
    }

    #[test]
    fn sparse_vec_invariants() {
        assert!(SparseVec::<f64>::new(4, vec![0, 2], vec![1.0, 2.0]).is_ok());
        assert!(SparseVec::<f64>::new(4, vec![2, 0], vec![1.0, 2.0]).is_err());
        assert!(SparseVec::<f64>::new(4, vec![1, 1], vec![1.0, 2.0]).is_err());
        assert!(SparseVec::<f64>::new(4, vec![4], vec![1.0]).is_err());
        assert!(SparseVec::<f64>::new(4, vec![0], vec![]).is_err());
    }

    #[test]
    fn from_dense_densify_roundtrip() {
        let x = vec![0.0, 3.0, 0.0, -2.5, 0.0];
        let sv = SparseVec::from_dense(&x);
        assert_eq!(sv.indices(), &[1, 3]);
        assert_eq!(sv.densify(), x);
        assert!((sv.density() - 0.4).abs() < 1e-15);
    }

    #[test]
    fn scatter_matches_dense_baseline() {
        let (csr, csc) = fixtures();
        let x = SparseVec::new(6, vec![1, 4], vec![2.0, -1.5]).unwrap();
        let y = csc.spmspv(&x).unwrap();
        y.validate().unwrap();
        let yd = densify_spmv(&csr, &x).unwrap();
        for (r, v) in y.iter() {
            assert_eq!(v.to_bits(), yd[r].to_bits());
        }
    }

    #[test]
    fn masked_csr_matches_csc_bitwise() {
        let (csr, csc) = fixtures();
        let x = SparseVec::new(6, vec![0, 2, 5], vec![1.25, -0.5, 3.0]).unwrap();
        let a = csc.spmspv(&x).unwrap();
        let b = csr.spmspv(&x).unwrap();
        assert_eq!(a.indices(), b.indices());
        let bits = |v: &SparseVec<f64>| v.values().iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn bucketed_matches_scatter_for_every_bucket_count() {
        let (_, csc) = fixtures();
        let x = SparseVec::new(6, vec![0, 3, 5], vec![0.75, 2.0, -1.0]).unwrap();
        let reference = csc.spmspv(&x).unwrap();
        for nb in 1..=8 {
            let got = spmspv_bucketed(&csc, &x, nb).unwrap();
            assert_eq!(got, reference, "nbuckets={nb}");
        }
    }

    #[test]
    fn empty_frontier_yields_empty_output() {
        let (csr, csc) = fixtures();
        let x = SparseVec::empty(6);
        assert!(csc.spmspv(&x).unwrap().is_empty());
        assert!(csr.spmspv(&x).unwrap().is_empty());
        assert!(spmspv_bucketed(&csc, &x, 4).unwrap().is_empty());
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let (csr, csc) = fixtures();
        let x = SparseVec::new(5, vec![0], vec![1.0]).unwrap();
        assert!(csc.spmspv(&x).is_err());
        assert!(csr.spmspv(&x).is_err());
    }

    #[test]
    fn structural_support_survives_cancellation() {
        // Column 0 carries +1 and -1 into row 0 via two active columns
        // whose contributions cancel: the row must still be present.
        let mut coo = Coo::<f64>::new(1, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 1, 1.0).unwrap();
        let csc = Csc::<u32, f64>::from_csr(&coo.to_csr()).unwrap();
        let x = SparseVec::new(2, vec![0, 1], vec![1.0, -1.0]).unwrap();
        let y = csc.spmspv(&x).unwrap();
        assert_eq!(y.indices(), &[0]);
        assert_eq!(y.values()[0].to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn crossover_switch() {
        assert_eq!(choose_path(0.01, DENSE_CROSSOVER_DENSITY), SpMSpVPath::CscBucket);
        assert_eq!(choose_path(0.25, DENSE_CROSSOVER_DENSITY), SpMSpVPath::Dense);
        assert_eq!(SpMSpVPath::MaskedCsr.as_str(), "masked-csr");
    }
}
