//! Minimal dense row-major matrix, used as the correctness oracle in tests
//! and for pretty-printing tiny examples. Not intended for large data.

use crate::scalar::Scalar;
use std::fmt;

/// Dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense<V: Scalar = f64> {
    nrows: usize,
    ncols: usize,
    data: Vec<V>,
}

impl<V: Scalar> Dense<V> {
    /// All-zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Dense { nrows, ncols, data: vec![V::zero(); nrows * ncols] }
    }

    /// Builds from a row-major slice; `data.len()` must equal
    /// `nrows * ncols`.
    pub fn from_row_major(nrows: usize, ncols: usize, data: Vec<V>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "row-major data length mismatch");
        Dense { nrows, ncols, data }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Element accessor.
    pub fn get(&self, r: usize, c: usize) -> V {
        self.data[r * self.ncols + c]
    }

    /// Mutable element accessor.
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut V {
        &mut self.data[r * self.ncols + c]
    }

    /// Row-major backing storage.
    pub fn data(&self) -> &[V] {
        &self.data
    }

    /// Dense reference SpMV.
    #[allow(clippy::needless_range_loop)]
    pub fn spmv(&self, x: &[V], y: &mut [V]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        for r in 0..self.nrows {
            let mut acc = V::zero();
            let row = &self.data[r * self.ncols..(r + 1) * self.ncols];
            for (a, &xv) in row.iter().zip(x) {
                acc += *a * xv;
            }
            y[r] = acc;
        }
    }

    /// Number of non-zero elements (exact bit-level zero test).
    pub fn count_nonzeros(&self) -> usize {
        self.data.iter().filter(|v| **v != V::zero()).count()
    }

    /// Converts to COO, dropping exact zeros.
    pub fn to_coo(&self) -> crate::coo::Coo<V> {
        let mut coo = crate::coo::Coo::new(self.nrows, self.ncols);
        for r in 0..self.nrows {
            for c in 0..self.ncols {
                let v = self.get(r, c);
                if v != V::zero() {
                    coo.push(r, c, v).expect("in-bounds by construction");
                }
            }
        }
        coo
    }

    /// Maximum absolute element-wise difference against `other`.
    pub fn max_abs_diff(&self, other: &Dense<V>) -> f64 {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        self.data.iter().zip(&other.data).map(|(a, b)| (*a - *b).abs().to_f64()).fold(0.0, f64::max)
    }
}

impl<V: Scalar> fmt::Display for Dense<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.nrows {
            for c in 0..self.ncols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>8}", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_get_mut() {
        let mut d: Dense<f64> = Dense::zeros(2, 3);
        assert_eq!(d.get(1, 2), 0.0);
        *d.get_mut(1, 2) = 5.0;
        assert_eq!(d.get(1, 2), 5.0);
        assert_eq!(d.count_nonzeros(), 1);
    }

    #[test]
    fn spmv_identity() {
        let mut d: Dense<f64> = Dense::zeros(3, 3);
        for i in 0..3 {
            *d.get_mut(i, i) = 1.0;
        }
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        d.spmv(&x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn dense_coo_roundtrip() {
        let d = Dense::from_row_major(2, 2, vec![1.0, 0.0, 0.0, 2.0]);
        let coo = d.to_coo();
        assert_eq!(coo.nnz(), 2);
        assert_eq!(coo.to_dense(), d);
    }

    #[test]
    fn max_abs_diff() {
        let a = Dense::from_row_major(1, 2, vec![1.0, 2.0]);
        let b = Dense::from_row_major(1, 2, vec![1.5, 2.0]);
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }
}
