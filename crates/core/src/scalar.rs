//! The [`Scalar`] abstraction over matrix value types.
//!
//! The paper evaluates double-precision (8-byte) values and motivates value
//! compression by the fact that values dominate the CSR working set by a 2:1
//! ratio against 4-byte indices. We keep the value type generic over `f32`
//! and `f64` so the working-set analysis (and the mixed-precision related
//! work the paper cites) can be explored.

use std::fmt::{Debug, Display};
use std::hash::Hash;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// Trait for numeric types usable as matrix/vector element values.
///
/// Implemented for `f32` and `f64`. The [`Scalar::Bits`] associated type
/// exposes the raw bit pattern, which CSR-VI uses to deduplicate values:
/// two values are "the same" for compression purposes iff their *canonical*
/// bit patterns are identical — `-0.0` and `0.0` are distinct (conflating
/// them would change results), while all `NaN`s collapse to one canonical
/// slot regardless of payload (arithmetic cannot tell them apart, and
/// per-element payloads would otherwise defeat deduplication entirely).
pub trait Scalar:
    Copy
    + Default
    + PartialEq
    + PartialOrd
    + Debug
    + Display
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + Sum
    + Send
    + Sync
    + 'static
{
    /// Raw bit-pattern type (`u32` for `f32`, `u64` for `f64`).
    type Bits: Copy + Eq + Hash + Debug + Send + Sync;

    /// Size of one value in bytes, as it appears in the working set.
    const BYTES: usize;

    /// The additive identity.
    fn zero() -> Self;
    /// The multiplicative identity.
    fn one() -> Self;
    /// Raw bit pattern, used for exact-equality deduplication.
    fn to_bits(self) -> Self::Bits;
    /// Inverse of [`Scalar::to_bits`].
    fn from_bits(bits: Self::Bits) -> Self;
    /// Lossless conversion from `f64` where possible (used by generators;
    /// `f32` rounds).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64` (used by validators and tests).
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// `true` if the value is finite (not NaN/inf).
    fn is_finite(self) -> bool;

    /// Distance between `self` and `other` in units of least precision:
    /// the number of representable values strictly between them (plus one
    /// if they differ), computed on the monotone integer mapping of the
    /// float bit pattern. Adjacent floats are 1 apart, `x` and `x` are 0,
    /// `+0.0` and `-0.0` are 0. Any comparison involving NaN returns
    /// `u64::MAX` — NaNs never verify as "close".
    ///
    /// This is the tolerance metric for cross-kernel verification
    /// ([`crate::checked::CheckedSpMv`]): summation-order differences
    /// between formats shift results by a few ULPs, while real corruption
    /// (wrong value, wrong column, dropped entry) lands whole exponents
    /// away.
    fn ulp_distance(self, other: Self) -> u64;
}

/// Maps a float bit pattern to an integer whose ordering matches the
/// ordering of the floats (negative range mirrored below the positive).
#[inline]
fn monotone_bits_u64(bits: u64) -> u64 {
    if bits >> 63 == 0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

#[inline]
fn monotone_bits_u32(bits: u32) -> u32 {
    if bits >> 31 == 0 {
        bits | (1 << 31)
    } else {
        !bits
    }
}

impl Scalar for f64 {
    type Bits = u64;
    const BYTES: usize = 8;

    #[inline(always)]
    fn zero() -> Self {
        0.0
    }
    #[inline(always)]
    fn one() -> Self {
        1.0
    }
    #[inline(always)]
    fn to_bits(self) -> u64 {
        f64::to_bits(self)
    }
    #[inline(always)]
    fn from_bits(bits: u64) -> Self {
        f64::from_bits(bits)
    }
    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline]
    fn ulp_distance(self, other: Self) -> u64 {
        if self.is_nan() || other.is_nan() {
            return u64::MAX;
        }
        if self == other {
            return 0; // covers +0.0 vs -0.0
        }
        monotone_bits_u64(self.to_bits()).abs_diff(monotone_bits_u64(other.to_bits()))
    }
}

impl Scalar for f32 {
    type Bits = u32;
    const BYTES: usize = 4;

    #[inline(always)]
    fn zero() -> Self {
        0.0
    }
    #[inline(always)]
    fn one() -> Self {
        1.0
    }
    #[inline(always)]
    fn to_bits(self) -> u32 {
        f32::to_bits(self)
    }
    #[inline(always)]
    fn from_bits(bits: u32) -> Self {
        f32::from_bits(bits)
    }
    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline]
    fn ulp_distance(self, other: Self) -> u64 {
        if self.is_nan() || other.is_nan() {
            return u64::MAX;
        }
        if self == other {
            return 0;
        }
        monotone_bits_u32(self.to_bits()).abs_diff(monotone_bits_u32(other.to_bits())) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_bits_roundtrip() {
        for v in [0.0f64, -0.0, 1.5, -3.25, f64::MAX, f64::MIN_POSITIVE] {
            assert_eq!(f64::from_bits(Scalar::to_bits(v)), v);
        }
    }

    #[test]
    fn f32_bits_roundtrip() {
        for v in [0.0f32, -0.0, 1.5, -3.25, f32::MAX] {
            assert_eq!(f32::from_bits(Scalar::to_bits(v)), v);
        }
    }

    #[test]
    fn zero_and_negative_zero_have_distinct_bits() {
        // CSR-VI must treat them as distinct unique values.
        assert_ne!(Scalar::to_bits(0.0f64), Scalar::to_bits(-0.0f64));
    }

    #[test]
    fn bytes_constants_match_size_of() {
        assert_eq!(<f64 as Scalar>::BYTES, std::mem::size_of::<f64>());
        assert_eq!(<f32 as Scalar>::BYTES, std::mem::size_of::<f32>());
    }

    #[test]
    fn identities() {
        assert_eq!(<f64 as Scalar>::zero() + <f64 as Scalar>::one(), 1.0);
        assert_eq!(<f32 as Scalar>::one() * <f32 as Scalar>::one(), 1.0);
    }

    #[test]
    fn ulp_distance_adjacent_and_identical() {
        let a = 1.0f64;
        let b = f64::from_bits(a.to_bits() + 1);
        assert_eq!(a.ulp_distance(a), 0);
        assert_eq!(a.ulp_distance(b), 1);
        assert_eq!(b.ulp_distance(a), 1);
        assert_eq!(0.0f64.ulp_distance(-0.0f64), 0);
        // Crossing zero counts the representable values in between; +0.0
        // and -0.0 are distinct steps of the mapping (3 = -0.0, +0.0 and
        // the endpoint), even though they compare equal to each other.
        let tiny = f64::from_bits(1); // smallest positive subnormal
        assert_eq!(tiny.ulp_distance(-tiny), 3);
    }

    #[test]
    fn ulp_distance_flags_gross_errors() {
        assert!(1.0f64.ulp_distance(-1.0) > 1 << 60);
        assert!(1.0f64.ulp_distance(2.0) > 1 << 50);
        assert_eq!(1.0f64.ulp_distance(f64::NAN), u64::MAX);
        assert_eq!(f32::NAN.ulp_distance(1.0), u64::MAX);
        let a = 1.0f32;
        let b = f32::from_bits(a.to_bits() + 3);
        assert_eq!(a.ulp_distance(b), 3);
    }
}
