//! Working-set accounting (§II-B) and compression reporting.
//!
//! The paper's working-set formula:
//!
//! ```text
//! ws = csr_size + vectors_size
//!    = (nnz*(idx_s + val_s) + (nrows+1)*idx_s) + (nrows + ncols)*val_s
//! ```
//!
//! Matrix-set selection in §VI-B is driven entirely by this quantity
//! (`ws ≥ 3 MB` for M0, `ws ≥ 17 MB` for ML), so the harness reuses these
//! exact definitions.

use crate::index::SpIndex;
use crate::scalar::Scalar;

/// Bytes in one MiB — the paper speaks in binary megabytes (4 MB L2 etc.).
pub const MB: usize = 1 << 20;

/// Breakdown of the SpMV working set for a matrix + its x/y vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkingSet {
    /// Bytes of the column-index array (`nnz * idx_s` for CSR) or its
    /// compressed replacement.
    pub index_bytes: usize,
    /// Bytes of the row-pointer array.
    pub row_ptr_bytes: usize,
    /// Bytes of numerical value data (`nnz * val_s` for CSR) or its
    /// compressed replacement.
    pub value_bytes: usize,
    /// Bytes of the dense x and y vectors.
    pub vector_bytes: usize,
}

impl WorkingSet {
    /// Working set of plain CSR per the paper's formula.
    pub fn for_csr<I: SpIndex, V: Scalar>(nrows: usize, ncols: usize, nnz: usize) -> WorkingSet {
        WorkingSet {
            index_bytes: nnz * I::BYTES,
            row_ptr_bytes: (nrows + 1) * I::BYTES,
            value_bytes: nnz * V::BYTES,
            vector_bytes: (nrows + ncols) * V::BYTES,
        }
    }

    /// Total bytes.
    pub fn total(&self) -> usize {
        self.index_bytes + self.row_ptr_bytes + self.value_bytes + self.vector_bytes
    }

    /// Matrix-only bytes (excludes the x/y vectors) — what the compression
    /// schemes act on.
    pub fn matrix_bytes(&self) -> usize {
        self.index_bytes + self.row_ptr_bytes + self.value_bytes
    }

    /// Total working set in MiB.
    pub fn total_mb(&self) -> f64 {
        self.total() as f64 / MB as f64
    }

    /// Matrix traffic per non-zero in bytes — the per-nnz streaming cost
    /// that index/value compression reduces (§II-B; 12 B/nnz for CSR with
    /// 4-byte indices and 8-byte values, ignoring `row_ptr`).
    pub fn matrix_bytes_per_nnz(&self, nnz: usize) -> f64 {
        self.matrix_bytes() as f64 / nnz.max(1) as f64
    }
}

/// Effective bandwidth in bytes/second of streaming `bytes_per_iter` bytes
/// `iters` times in `seconds` — the measured-time side of the working-set
/// model. For a memory-bound SpMV this approaches the machine's sustained
/// memory bandwidth; for a compressed format, computing it over the *CSR*
/// byte count instead yields the compression-adjusted bandwidth (the rate
/// an uncompressed kernel would have needed to match the measured time).
///
/// Degenerate timings (zero, negative, non-finite, or denormal-tiny
/// `seconds` whose quotient overflows to infinity) clamp to `0.0` so the
/// value stays finite end-to-end — BENCH.json has no representation for
/// `inf`/`NaN` and the validator rejects them. Use
/// [`try_effective_bandwidth`] to get a typed error instead.
pub fn effective_bandwidth(bytes_per_iter: usize, iters: usize, seconds: f64) -> f64 {
    try_effective_bandwidth(bytes_per_iter, iters, seconds).unwrap_or(0.0)
}

/// Checked twin of [`effective_bandwidth`]: returns
/// [`SparseError::InvalidArgument`] when `seconds` is non-positive or
/// non-finite, or when the quotient is non-finite (denormal-tiny elapsed
/// time on a fast clock).
pub fn try_effective_bandwidth(
    bytes_per_iter: usize,
    iters: usize,
    seconds: f64,
) -> crate::error::Result<f64> {
    if seconds <= 0.0 || !seconds.is_finite() {
        return Err(crate::error::SparseError::InvalidArgument(format!(
            "effective_bandwidth needs a positive finite elapsed time, got {seconds}"
        )));
    }
    let bw = bytes_per_iter as f64 * iters as f64 / seconds;
    if !bw.is_finite() {
        return Err(crate::error::SparseError::InvalidArgument(format!(
            "effective_bandwidth over {seconds}s is non-finite ({bw})"
        )));
    }
    Ok(bw)
}

/// Size comparison of a compressed format against its CSR baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeReport {
    /// CSR matrix bytes (index + row_ptr + values).
    pub csr_bytes: usize,
    /// Compressed matrix bytes.
    pub compressed_bytes: usize,
}

impl SizeReport {
    /// Fraction of the CSR size that was *removed*; the number printed on
    /// each bar of the paper's Figs. 7-8 (e.g. `0.21` = 21% smaller).
    pub fn reduction(&self) -> f64 {
        1.0 - self.compressed_bytes as f64 / self.csr_bytes as f64
    }

    /// Compression ratio `csr / compressed` (> 1 is smaller).
    pub fn ratio(&self) -> f64 {
        self.csr_bytes as f64 / self.compressed_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_working_set_formula() {
        // nnz=16, nrows=ncols=6, u32 idx, f64 val:
        let ws = WorkingSet::for_csr::<u32, f64>(6, 6, 16);
        assert_eq!(ws.index_bytes, 64);
        assert_eq!(ws.row_ptr_bytes, 28);
        assert_eq!(ws.value_bytes, 128);
        assert_eq!(ws.vector_bytes, 96);
        assert_eq!(ws.total(), 64 + 28 + 128 + 96);
        assert_eq!(ws.matrix_bytes(), 64 + 28 + 128);
    }

    #[test]
    fn values_dominate_by_two_thirds() {
        // §II-B: with 4-byte indices and 8-byte values, values are 2/3 of
        // col_ind + values.
        let ws = WorkingSet::for_csr::<u32, f64>(1000, 1000, 100_000);
        let frac = ws.value_bytes as f64 / (ws.value_bytes + ws.index_bytes) as f64;
        assert!((frac - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_and_traffic_helpers() {
        let ws = WorkingSet::for_csr::<u32, f64>(1000, 1000, 100_000);
        // 12 B/nnz for col_ind + values, plus the row_ptr share.
        let per_nnz = ws.matrix_bytes_per_nnz(100_000);
        assert!((12.0..12.1).contains(&per_nnz), "{per_nnz}");
        // 1 MB streamed 10 times in 0.01 s = 1 GB/s.
        assert!((effective_bandwidth(MB, 10, 0.01) - 1.048576e9).abs() < 1.0);
    }

    #[test]
    fn effective_bandwidth_clamps_degenerate_timings_finite() {
        // Regression: zero / denormal-tiny / non-finite elapsed times used
        // to produce NaN or inf, which the BENCH.json writer serialized as
        // invalid JSON. The infallible helper now clamps to 0.0 ...
        assert_eq!(effective_bandwidth(MB, 1, 0.0), 0.0);
        assert_eq!(effective_bandwidth(MB, 1, -1.0), 0.0);
        assert_eq!(effective_bandwidth(MB, 1, f64::NAN), 0.0);
        assert_eq!(effective_bandwidth(MB, 1, f64::MIN_POSITIVE * 1e-10), 0.0);
        assert!(effective_bandwidth(MB, 1, 1e-3).is_finite());
        // ... and the checked twin reports a typed error.
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = try_effective_bandwidth(MB, 1, bad).unwrap_err();
            assert!(matches!(err, crate::error::SparseError::InvalidArgument(_)), "{bad}: {err}");
        }
        // Denormal-tiny elapsed: the division itself overflows to inf.
        let err = try_effective_bandwidth(MB, 1000, f64::MIN_POSITIVE * 1e-12).unwrap_err();
        assert!(matches!(err, crate::error::SparseError::InvalidArgument(_)), "{err}");
        assert_eq!(
            try_effective_bandwidth(MB, 10, 0.01).unwrap(),
            effective_bandwidth(MB, 10, 0.01)
        );
    }

    #[test]
    fn size_report_reduction() {
        let r = SizeReport { csr_bytes: 100, compressed_bytes: 80 };
        assert!((r.reduction() - 0.2).abs() < 1e-12);
        assert!((r.ratio() - 1.25).abs() < 1e-12);
    }
}
