//! Working-set accounting (§II-B) and compression reporting.
//!
//! The paper's working-set formula:
//!
//! ```text
//! ws = csr_size + vectors_size
//!    = (nnz*(idx_s + val_s) + (nrows+1)*idx_s) + (nrows + ncols)*val_s
//! ```
//!
//! Matrix-set selection in §VI-B is driven entirely by this quantity
//! (`ws ≥ 3 MB` for M0, `ws ≥ 17 MB` for ML), so the harness reuses these
//! exact definitions.

use crate::index::SpIndex;
use crate::scalar::Scalar;

/// Bytes in one MiB — the paper speaks in binary megabytes (4 MB L2 etc.).
pub const MB: usize = 1 << 20;

/// Breakdown of the SpMV working set for a matrix + its x/y vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkingSet {
    /// Bytes of the column-index array (`nnz * idx_s` for CSR) or its
    /// compressed replacement.
    pub index_bytes: usize,
    /// Bytes of the row-pointer array.
    pub row_ptr_bytes: usize,
    /// Bytes of numerical value data (`nnz * val_s` for CSR) or its
    /// compressed replacement.
    pub value_bytes: usize,
    /// Bytes of the dense x and y vectors.
    pub vector_bytes: usize,
}

impl WorkingSet {
    /// Working set of plain CSR per the paper's formula.
    pub fn for_csr<I: SpIndex, V: Scalar>(nrows: usize, ncols: usize, nnz: usize) -> WorkingSet {
        WorkingSet {
            index_bytes: nnz * I::BYTES,
            row_ptr_bytes: (nrows + 1) * I::BYTES,
            value_bytes: nnz * V::BYTES,
            vector_bytes: (nrows + ncols) * V::BYTES,
        }
    }

    /// Total bytes.
    pub fn total(&self) -> usize {
        self.index_bytes + self.row_ptr_bytes + self.value_bytes + self.vector_bytes
    }

    /// Matrix-only bytes (excludes the x/y vectors) — what the compression
    /// schemes act on.
    pub fn matrix_bytes(&self) -> usize {
        self.index_bytes + self.row_ptr_bytes + self.value_bytes
    }

    /// Total working set in MiB.
    pub fn total_mb(&self) -> f64 {
        self.total() as f64 / MB as f64
    }
}

/// Size comparison of a compressed format against its CSR baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeReport {
    /// CSR matrix bytes (index + row_ptr + values).
    pub csr_bytes: usize,
    /// Compressed matrix bytes.
    pub compressed_bytes: usize,
}

impl SizeReport {
    /// Fraction of the CSR size that was *removed*; the number printed on
    /// each bar of the paper's Figs. 7-8 (e.g. `0.21` = 21% smaller).
    pub fn reduction(&self) -> f64 {
        1.0 - self.compressed_bytes as f64 / self.csr_bytes as f64
    }

    /// Compression ratio `csr / compressed` (> 1 is smaller).
    pub fn ratio(&self) -> f64 {
        self.csr_bytes as f64 / self.compressed_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_working_set_formula() {
        // nnz=16, nrows=ncols=6, u32 idx, f64 val:
        let ws = WorkingSet::for_csr::<u32, f64>(6, 6, 16);
        assert_eq!(ws.index_bytes, 64);
        assert_eq!(ws.row_ptr_bytes, 28);
        assert_eq!(ws.value_bytes, 128);
        assert_eq!(ws.vector_bytes, 96);
        assert_eq!(ws.total(), 64 + 28 + 128 + 96);
        assert_eq!(ws.matrix_bytes(), 64 + 28 + 128);
    }

    #[test]
    fn values_dominate_by_two_thirds() {
        // §II-B: with 4-byte indices and 8-byte values, values are 2/3 of
        // col_ind + values.
        let ws = WorkingSet::for_csr::<u32, f64>(1000, 1000, 100_000);
        let frac = ws.value_bytes as f64 / (ws.value_bytes + ws.index_bytes) as f64;
        assert!((frac - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn size_report_reduction() {
        let r = SizeReport { csr_bytes: 100, compressed_bytes: 80 };
        assert!((r.reduction() - 0.2).abs() < 1e-12);
        assert!((r.ratio() - 1.25).abs() < 1e-12);
    }
}
