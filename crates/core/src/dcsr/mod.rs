//! DCSR — a reimplementation of Willcock & Lumsdaine's delta-compressed
//! CSR (ICS'06), the closest related work the paper compares against
//! (§III-B).
//!
//! DCSR serializes the column structure into a byte stream of *command
//! codes* for primitive sub-operations — small literal deltas, escape
//! codes for wider deltas, and row-advance commands — decoded **per
//! element**. This fine-grained decoding is precisely what the paper
//! criticizes: the per-element `match` produces frequently mispredicted
//! branches. The original mitigates this by grouping frequent six-command
//! patterns into unrolled sequences; we implement the analogous
//! optimization as *literal run grouping* (a run command followed by a
//! count and raw delta bytes, executed in a tight loop).
//!
//! This module is a behavioral reimplementation from the published
//! description, not a bit-compatible re-encoding. It exists so the
//! benchmark suite can reproduce the decode-overhead comparison between
//! fine-grained (DCSR) and coarse-grained (CSR-DU) delta compression
//! (ablation A2 in DESIGN.md).

use crate::coo::Coo;
use crate::csr::Csr;
use crate::error::Result;
use crate::index::SpIndex;
use crate::scalar::Scalar;
use crate::spmv::{FormatKind, SpMv};
use crate::stats::SizeReport;
use crate::varint::{read_varint, write_varint};

/// Largest column delta encoded as a single literal byte.
pub const MAX_LITERAL: u8 = 0xEF; // 239

/// Escape: 2-byte little-endian delta follows.
pub const CMD_DELTA16: u8 = 0xF0;
/// Escape: 4-byte little-endian delta follows.
pub const CMD_DELTA32: u8 = 0xF1;
/// Escape: 8-byte little-endian delta follows.
pub const CMD_DELTA64: u8 = 0xF2;
/// Advance exactly one row; column position resets.
pub const CMD_NEW_ROW: u8 = 0xF3;
/// Advance `1 + varint` rows; column position resets.
pub const CMD_ROW_JMP: u8 = 0xF4;
/// Literal run: a count byte then `count` raw u8 deltas.
pub const CMD_RUN: u8 = 0xF5;

/// Encoder options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DcsrOptions {
    /// Emit [`CMD_RUN`] groups for runs of ≥ `min_run` literal deltas —
    /// the analog of the original's six-command pattern unrolling.
    pub group_literals: bool,
    /// Minimum literal-run length worth a run header.
    pub min_run: usize,
}

impl Default for DcsrOptions {
    fn default() -> Self {
        DcsrOptions { group_literals: true, min_run: 4 }
    }
}

impl DcsrOptions {
    /// Fully fine-grained encoding: one command per element, no grouping.
    /// This is the worst-case branching configuration.
    pub fn ungrouped() -> Self {
        DcsrOptions { group_literals: false, min_run: usize::MAX }
    }
}

/// A sparse matrix in (reimplemented) DCSR format.
#[derive(Debug, Clone, PartialEq)]
pub struct Dcsr<V: Scalar = f64> {
    nrows: usize,
    ncols: usize,
    stream: Vec<u8>,
    values: Vec<V>,
}

impl<V: Scalar> Dcsr<V> {
    /// Encodes a CSR matrix. `O(nnz)`.
    pub fn from_csr<I: SpIndex>(csr: &Csr<I, V>, opts: &DcsrOptions) -> Dcsr<V> {
        let mut stream: Vec<u8> = Vec::with_capacity(csr.nnz() + csr.nrows() + 16);
        let mut pending_rows: u64 = 0;

        for r in 0..csr.nrows() {
            if csr.row_nnz(r) == 0 {
                pending_rows += 1;
                continue;
            }
            // Row-advance command.
            if pending_rows == 0 {
                stream.push(CMD_NEW_ROW);
            } else {
                stream.push(CMD_ROW_JMP);
                write_varint(&mut stream, pending_rows);
                pending_rows = 0;
            }

            // Column deltas (first is the absolute column).
            let deltas: Vec<usize> = {
                let mut prev = 0usize;
                let mut first = true;
                csr.row_iter(r)
                    .map(|(c, _)| {
                        let d = if first { c } else { c - prev };
                        first = false;
                        prev = c;
                        d
                    })
                    .collect()
            };

            let mut k = 0usize;
            while k < deltas.len() {
                let d = deltas[k];
                if d <= MAX_LITERAL as usize {
                    if opts.group_literals {
                        // Measure the literal run starting here.
                        let mut run = 1usize;
                        while k + run < deltas.len()
                            && deltas[k + run] <= MAX_LITERAL as usize
                            && run < 255
                        {
                            run += 1;
                        }
                        if run >= opts.min_run {
                            stream.push(CMD_RUN);
                            stream.push(run as u8);
                            for &dd in &deltas[k..k + run] {
                                stream.push(dd as u8);
                            }
                            k += run;
                            continue;
                        }
                    }
                    stream.push(d as u8);
                    k += 1;
                } else if d <= u16::MAX as usize {
                    stream.push(CMD_DELTA16);
                    stream.extend_from_slice(&(d as u16).to_le_bytes());
                    k += 1;
                } else if d <= u32::MAX as usize {
                    stream.push(CMD_DELTA32);
                    stream.extend_from_slice(&(d as u32).to_le_bytes());
                    k += 1;
                } else {
                    stream.push(CMD_DELTA64);
                    stream.extend_from_slice(&(d as u64).to_le_bytes());
                    k += 1;
                }
            }
        }

        Dcsr { nrows: csr.nrows(), ncols: csr.ncols(), stream, values: csr.values().to_vec() }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The command/delta byte stream.
    pub fn stream(&self) -> &[u8] {
        &self.stream
    }

    /// Size comparison against the u32-index CSR baseline.
    pub fn size_report(&self) -> SizeReport {
        SizeReport {
            csr_bytes: self.nnz() * (4 + V::BYTES) + (self.nrows + 1) * 4,
            compressed_bytes: SpMv::size_bytes(self),
        }
    }

    /// Reconstructs CSR (lossless).
    pub fn to_csr(&self) -> Result<Csr<u32, V>> {
        let mut coo = Coo::with_capacity(self.nrows, self.ncols, self.nnz());
        let mut pos = 0usize;
        let mut row = usize::MAX; // wrapping: first NEW_ROW lands on 0
        let mut col = 0usize;
        let mut val = 0usize;
        while pos < self.stream.len() {
            let cmd = self.stream[pos];
            pos += 1;
            match cmd {
                CMD_NEW_ROW => {
                    row = row.wrapping_add(1);
                    col = 0;
                }
                CMD_ROW_JMP => {
                    let extra = read_varint(&self.stream, &mut pos) as usize;
                    row = row.wrapping_add(1 + extra);
                    col = 0;
                }
                CMD_RUN => {
                    let count = self.stream[pos] as usize;
                    pos += 1;
                    for _ in 0..count {
                        col += self.stream[pos] as usize;
                        pos += 1;
                        coo.push(row, col, self.values[val])?;
                        val += 1;
                    }
                }
                CMD_DELTA16 => {
                    col += u16::from_le_bytes([self.stream[pos], self.stream[pos + 1]]) as usize;
                    pos += 2;
                    coo.push(row, col, self.values[val])?;
                    val += 1;
                }
                CMD_DELTA32 => {
                    col +=
                        u32::from_le_bytes(self.stream[pos..pos + 4].try_into().expect("4 bytes"))
                            as usize;
                    pos += 4;
                    coo.push(row, col, self.values[val])?;
                    val += 1;
                }
                CMD_DELTA64 => {
                    col +=
                        u64::from_le_bytes(self.stream[pos..pos + 8].try_into().expect("8 bytes"))
                            as usize;
                    pos += 8;
                    coo.push(row, col, self.values[val])?;
                    val += 1;
                }
                literal => {
                    col += literal as usize;
                    coo.push(row, col, self.values[val])?;
                    val += 1;
                }
            }
        }
        coo.to_csr_with_index::<u32>()
    }
}

/// One thread's share of a DCSR stream (mirror of CSR-DU's `DuSplit`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DcsrSplit {
    /// Byte range within the command stream.
    pub stream_range: std::ops::Range<usize>,
    /// Offset of the split's first value within `values`.
    pub val_start: usize,
    /// First row owned (inclusive); `y[row_start..row_end]` belongs to
    /// this split.
    pub row_start: usize,
    /// Last row owned (exclusive).
    pub row_end: usize,
    /// Wrapping row baseline (see CSR-DU's split documentation).
    pub row_wrap_base: usize,
    /// Non-zeros in this split.
    pub nnz: usize,
}

impl<V: Scalar> Dcsr<V> {
    /// Computes up to `nparts` nnz-balanced splits, cutting only at
    /// row-command boundaries. O(stream length).
    pub fn splits(&self, nparts: usize) -> Vec<DcsrSplit> {
        assert!(nparts >= 1, "need at least one part");
        let total = self.nnz();
        if total == 0 {
            return vec![DcsrSplit {
                stream_range: 0..0,
                val_start: 0,
                row_start: 0,
                row_end: self.nrows,
                row_wrap_base: usize::MAX,
                nnz: 0,
            }];
        }
        // Scan the stream recording (pos, row, row_jmp, nnz_before) at
        // every row command.
        struct RowCmd {
            pos: usize,
            row: usize,
            extra: usize,
            nnz_before: usize,
        }
        let mut row_cmds: Vec<RowCmd> = Vec::new();
        let mut pos = 0usize;
        let mut row = usize::MAX;
        let mut nnz_seen = 0usize;
        while pos < self.stream.len() {
            let cmd = self.stream[pos];
            match cmd {
                CMD_NEW_ROW => {
                    row = row.wrapping_add(1);
                    row_cmds.push(RowCmd { pos, row, extra: 0, nnz_before: nnz_seen });
                    pos += 1;
                }
                CMD_ROW_JMP => {
                    let mut p = pos + 1;
                    let extra = read_varint(&self.stream, &mut p) as usize;
                    row = row.wrapping_add(1 + extra);
                    row_cmds.push(RowCmd { pos, row, extra, nnz_before: nnz_seen });
                    pos = p;
                }
                CMD_RUN => {
                    let count = self.stream[pos + 1] as usize;
                    nnz_seen += count;
                    pos += 2 + count;
                }
                CMD_DELTA16 => {
                    nnz_seen += 1;
                    pos += 3;
                }
                CMD_DELTA32 => {
                    nnz_seen += 1;
                    pos += 5;
                }
                CMD_DELTA64 => {
                    nnz_seen += 1;
                    pos += 9;
                }
                _ => {
                    nnz_seen += 1;
                    pos += 1;
                }
            }
        }
        let stream_end = pos;

        // Choose cut rows: for part k, the first row command whose
        // nnz_before reaches k*total/nparts.
        let mut out: Vec<DcsrSplit> = Vec::with_capacity(nparts);
        let mut start_idx = 0usize; // index into row_cmds
        for k in 0..nparts {
            if start_idx >= row_cmds.len() {
                break;
            }
            let target = (k + 1) * total / nparts;
            let mut end_idx = start_idx + 1;
            if k + 1 < nparts {
                while end_idx < row_cmds.len() && row_cmds[end_idx].nnz_before < target {
                    end_idx += 1;
                }
            } else {
                end_idx = row_cmds.len();
            }
            let sc = &row_cmds[start_idx];
            let (stream_hi, row_end, nnz_hi) = if end_idx < row_cmds.len() {
                let nc = &row_cmds[end_idx];
                (nc.pos, nc.row, nc.nnz_before)
            } else {
                (stream_end, self.nrows, total)
            };
            out.push(DcsrSplit {
                stream_range: sc.pos..stream_hi,
                val_start: sc.nnz_before,
                row_start: sc.row,
                row_end,
                row_wrap_base: sc.row.wrapping_sub(1 + sc.extra),
                nnz: nnz_hi - sc.nnz_before,
            });
            start_idx = end_idx;
        }
        // First split must own leading empty rows too.
        if let Some(first) = out.first_mut() {
            first.row_start = 0;
        }
        out
    }

    /// SpMV over one split, writing the local slice covering the split's
    /// rows (`y_local.len() == row_end - row_start`).
    pub fn spmv_split_local(&self, split: &DcsrSplit, x: &[V], y_local: &mut [V]) {
        debug_assert_eq!(y_local.len(), split.row_end - split.row_start);
        for v in y_local.iter_mut() {
            *v = V::zero();
        }
        let stream = &self.stream[..];
        let values = &self.values[..];
        let y_base = split.row_start;
        let mut pos = split.stream_range.start;
        let end = split.stream_range.end;
        let mut row = split.row_wrap_base;
        let mut col = 0usize;
        let mut val = split.val_start;
        let mut acc = V::zero();
        let mut have_row = false;
        while pos < end {
            let cmd = stream[pos];
            pos += 1;
            match cmd {
                CMD_NEW_ROW => {
                    if have_row {
                        y_local[row - y_base] = acc;
                    }
                    row = row.wrapping_add(1);
                    col = 0;
                    acc = V::zero();
                    have_row = true;
                }
                CMD_ROW_JMP => {
                    if have_row {
                        y_local[row - y_base] = acc;
                    }
                    let extra = read_varint(stream, &mut pos) as usize;
                    row = row.wrapping_add(1 + extra);
                    col = 0;
                    acc = V::zero();
                    have_row = true;
                }
                CMD_RUN => {
                    let count = stream[pos] as usize;
                    pos += 1;
                    for _ in 0..count {
                        col += stream[pos] as usize;
                        pos += 1;
                        acc += values[val] * x[col];
                        val += 1;
                    }
                }
                CMD_DELTA16 => {
                    col += u16::from_le_bytes([stream[pos], stream[pos + 1]]) as usize;
                    pos += 2;
                    acc += values[val] * x[col];
                    val += 1;
                }
                CMD_DELTA32 => {
                    col += u32::from_le_bytes(stream[pos..pos + 4].try_into().expect("4 bytes"))
                        as usize;
                    pos += 4;
                    acc += values[val] * x[col];
                    val += 1;
                }
                CMD_DELTA64 => {
                    col += u64::from_le_bytes(stream[pos..pos + 8].try_into().expect("8 bytes"))
                        as usize;
                    pos += 8;
                    acc += values[val] * x[col];
                    val += 1;
                }
                literal => {
                    col += literal as usize;
                    acc += values[val] * x[col];
                    val += 1;
                }
            }
        }
        if have_row {
            y_local[row - y_base] = acc;
        }
    }
}

impl<V: Scalar> SpMv<V> for Dcsr<V> {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn kind(&self) -> FormatKind {
        FormatKind::Dcsr
    }
    fn size_bytes(&self) -> usize {
        self.stream.len() + self.values.len() * V::BYTES
    }

    fn spmv(&self, x: &[V], y: &mut [V]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        for v in y.iter_mut() {
            *v = V::zero();
        }
        let stream = &self.stream[..];
        let values = &self.values[..];
        let mut pos = 0usize;
        let mut row = usize::MAX;
        let mut col = 0usize;
        let mut val = 0usize;
        let mut acc = V::zero();
        let mut have_row = false;

        // The per-element command dispatch below is the point of this
        // format: every non-zero pays one (potentially mispredicted)
        // branch, unless it falls inside a CMD_RUN group.
        while pos < stream.len() {
            let cmd = stream[pos];
            pos += 1;
            match cmd {
                CMD_NEW_ROW => {
                    if have_row {
                        y[row] = acc;
                    }
                    row = row.wrapping_add(1);
                    col = 0;
                    acc = V::zero();
                    have_row = true;
                }
                CMD_ROW_JMP => {
                    if have_row {
                        y[row] = acc;
                    }
                    let extra = read_varint(stream, &mut pos) as usize;
                    row = row.wrapping_add(1 + extra);
                    col = 0;
                    acc = V::zero();
                    have_row = true;
                }
                CMD_RUN => {
                    let count = stream[pos] as usize;
                    pos += 1;
                    for _ in 0..count {
                        col += stream[pos] as usize;
                        pos += 1;
                        acc += values[val] * x[col];
                        val += 1;
                    }
                }
                CMD_DELTA16 => {
                    col += u16::from_le_bytes([stream[pos], stream[pos + 1]]) as usize;
                    pos += 2;
                    acc += values[val] * x[col];
                    val += 1;
                }
                CMD_DELTA32 => {
                    col += u32::from_le_bytes(stream[pos..pos + 4].try_into().expect("4 bytes"))
                        as usize;
                    pos += 4;
                    acc += values[val] * x[col];
                    val += 1;
                }
                CMD_DELTA64 => {
                    col += u64::from_le_bytes(stream[pos..pos + 8].try_into().expect("8 bytes"))
                        as usize;
                    pos += 8;
                    acc += values[val] * x[col];
                    val += 1;
                }
                literal => {
                    col += literal as usize;
                    acc += values[val] * x[col];
                    val += 1;
                }
            }
        }
        if have_row {
            y[row] = acc;
        }
    }

    fn validate(&self) -> std::result::Result<(), crate::error::SparseError> {
        use crate::error::SparseError;
        use crate::varint::try_read_varint;
        let fail = |msg: String| SparseError::InvalidFormat(format!("DCSR stream: {msg}"));
        let stream = &self.stream[..];
        let mut pos = 0usize;
        let mut row = usize::MAX; // wrapping: first row command lands on 0
        let mut col = 0usize;
        let mut val = 0usize;
        let mut started = false;
        let mut row_elems = 0usize;

        // One bounds-checked decode of every element: `element` plays the
        // roles the kernel's delta arms share (column advance + value
        // consumption), erroring instead of indexing out of range.
        let element = |delta: usize,
                       row: usize,
                       col: &mut usize,
                       val: &mut usize,
                       row_elems: &mut usize|
         -> std::result::Result<(), SparseError> {
            if *row_elems > 0 && delta == 0 {
                return Err(SparseError::UnsortedIndices { row });
            }
            *col = col
                .checked_add(delta)
                .ok_or_else(|| fail(format!("column overflow in row {row}")))?;
            if *col >= self.ncols {
                return Err(SparseError::IndexOutOfBounds {
                    row,
                    col: *col,
                    nrows: self.nrows,
                    ncols: self.ncols,
                });
            }
            *val += 1;
            *row_elems += 1;
            Ok(())
        };

        while pos < stream.len() {
            let cmd = stream[pos];
            pos += 1;
            if !started && cmd != CMD_NEW_ROW && cmd != CMD_ROW_JMP {
                return Err(fail("stream must start with a row command".into()));
            }
            match cmd {
                CMD_NEW_ROW | CMD_ROW_JMP => {
                    if started && row_elems == 0 {
                        return Err(fail(format!("row command for empty row after row {row}")));
                    }
                    let extra = if cmd == CMD_ROW_JMP {
                        try_read_varint(stream, &mut pos)
                            .ok_or_else(|| fail("truncated row jump".into()))?
                            as usize
                    } else {
                        0
                    };
                    row = if started {
                        row.checked_add(1 + extra).ok_or_else(|| fail("row overflow".into()))?
                    } else {
                        started = true;
                        extra
                    };
                    if row >= self.nrows {
                        return Err(fail(format!("row {row} >= nrows {}", self.nrows)));
                    }
                    col = 0;
                    row_elems = 0;
                }
                CMD_RUN => {
                    if pos >= stream.len() {
                        return Err(fail("truncated run header".into()));
                    }
                    let count = stream[pos] as usize;
                    pos += 1;
                    if count == 0 {
                        return Err(fail("zero-length run".into()));
                    }
                    if pos + count > stream.len() {
                        return Err(fail("truncated run body".into()));
                    }
                    for _ in 0..count {
                        let d = stream[pos] as usize;
                        pos += 1;
                        element(d, row, &mut col, &mut val, &mut row_elems)?;
                    }
                }
                CMD_DELTA16 | CMD_DELTA32 | CMD_DELTA64 => {
                    let width = match cmd {
                        CMD_DELTA16 => 2,
                        CMD_DELTA32 => 4,
                        _ => 8,
                    };
                    if pos + width > stream.len() {
                        return Err(fail("truncated wide delta".into()));
                    }
                    let mut bytes = [0u8; 8];
                    bytes[..width].copy_from_slice(&stream[pos..pos + width]);
                    pos += width;
                    let d = u64::from_le_bytes(bytes);
                    let d = usize::try_from(d)
                        .map_err(|_| fail(format!("delta {d} exceeds usize in row {row}")))?;
                    element(d, row, &mut col, &mut val, &mut row_elems)?;
                }
                literal => {
                    element(literal as usize, row, &mut col, &mut val, &mut row_elems)?;
                }
            }
        }
        if started && row_elems == 0 {
            return Err(fail(format!("trailing row command for empty row {row}")));
        }
        if val != self.values.len() {
            return Err(fail(format!(
                "stream encodes {val} non-zeros but {} values stored",
                self.values.len()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::paper_matrix;

    #[test]
    fn roundtrip_paper_matrix_both_configs() {
        let csr = paper_matrix().to_csr();
        for opts in [DcsrOptions::default(), DcsrOptions::ungrouped()] {
            let d = Dcsr::from_csr(&csr, &opts);
            assert_eq!(d.to_csr().unwrap(), csr, "{opts:?}");
        }
    }

    #[test]
    fn spmv_matches_csr() {
        let coo = paper_matrix();
        let csr = coo.to_csr();
        let d = Dcsr::from_csr(&csr, &DcsrOptions::default());
        let x: Vec<f64> = (0..6).map(|i| 0.1 * i as f64 + 1.0).collect();
        let mut y0 = vec![0.0; 6];
        let mut y1 = vec![9.0; 6];
        csr.spmv(&x, &mut y0);
        d.spmv(&x, &mut y1);
        assert_eq!(y0, y1);
    }

    #[test]
    fn empty_rows_and_wide_deltas() {
        let coo = Coo::from_triplets(
            10,
            200_000,
            vec![(0, 5, 1.0), (0, 199_999, 2.0), (4, 0, 3.0), (9, 100_000, 4.0)],
        )
        .unwrap();
        let csr = coo.to_csr();
        let d = Dcsr::from_csr(&csr, &DcsrOptions::default());
        assert_eq!(d.to_csr().unwrap(), csr);

        let x = vec![1.0; 200_000];
        let mut y = vec![0.0; 10];
        let mut y_ref = vec![0.0; 10];
        d.spmv(&x, &mut y);
        coo.spmv_reference(&x, &mut y_ref);
        assert_eq!(y, y_ref);
    }

    #[test]
    fn grouping_shrinks_stream_for_regular_rows() {
        // Banded rows produce long literal runs; grouping replaces k
        // literal commands with (2 + k) bytes -> same size but fewer
        // dispatches. Stream sizes must stay comparable and both decode
        // identically.
        let n = 500;
        let mut t = Vec::new();
        for i in 0..n {
            for d in 0..8usize {
                if i + d < n {
                    t.push((i, i + d, 1.0 + d as f64));
                }
            }
        }
        let coo = Coo::from_triplets(n, n, t).unwrap();
        let csr = coo.to_csr();
        let grouped = Dcsr::from_csr(&csr, &DcsrOptions::default());
        let plain = Dcsr::from_csr(&csr, &DcsrOptions::ungrouped());
        assert_eq!(grouped.to_csr().unwrap(), plain.to_csr().unwrap());
        // A run header costs 2 bytes per run; with 8-element runs the
        // grouped stream is at most ~25% larger and typically similar.
        let ratio = grouped.stream().len() as f64 / plain.stream().len() as f64;
        assert!(ratio < 1.3, "ratio {ratio}");
    }

    #[test]
    fn compresses_versus_csr_indices() {
        let n = 2000;
        let mut t = Vec::new();
        for i in 0..n {
            for d in [0usize, 1, 2, 5, 9] {
                if i + d < n {
                    t.push((i, i + d, 1.0));
                }
            }
        }
        let coo = Coo::from_triplets(n, n, t).unwrap();
        let d = Dcsr::from_csr(&coo.to_csr(), &DcsrOptions::default());
        let report = d.size_report();
        assert!(report.reduction() > 0.15, "reduction {}", report.reduction());
    }

    #[test]
    fn empty_matrix() {
        let coo: Coo<f64> = Coo::new(3, 3);
        let d = Dcsr::from_csr(&coo.to_csr(), &DcsrOptions::default());
        assert!(d.stream().is_empty());
        let mut y = vec![1.0; 3];
        d.spmv(&[1.0; 3], &mut y);
        assert_eq!(y, vec![0.0; 3]);
    }

    #[test]
    fn splits_cover_rows_and_nnz_exactly() {
        let mut t: Vec<(usize, usize, f64)> = Vec::new();
        for r in 0..60usize {
            if r % 9 == 4 {
                continue;
            }
            for j in 0..(1 + r % 6) {
                t.push((r, (r * 7 + j * 13) % 80, (r + j) as f64 * 0.5 + 1.0));
            }
        }
        let mut coo = Coo::from_triplets(60, 80, t).unwrap();
        coo.canonicalize();
        let d = Dcsr::from_csr(&coo.to_csr(), &DcsrOptions::default());
        for nparts in [1usize, 2, 3, 5, 8] {
            let splits = d.splits(nparts);
            assert!(!splits.is_empty() && splits.len() <= nparts);
            assert_eq!(splits[0].row_start, 0);
            assert_eq!(splits.last().unwrap().row_end, 60);
            for w in splits.windows(2) {
                assert_eq!(w[0].row_end, w[1].row_start);
                assert_eq!(w[0].stream_range.end, w[1].stream_range.start);
            }
            assert_eq!(splits.iter().map(|s| s.nnz).sum::<usize>(), d.nnz());
        }
    }

    #[test]
    fn spmv_via_splits_matches_serial() {
        let mut t: Vec<(usize, usize, f64)> = Vec::new();
        for r in 0..50usize {
            if r % 11 == 3 {
                continue;
            }
            for j in 0..(1 + (r * 3) % 8) {
                t.push((r, (r + j * 17) % 300, (j as f64) - 2.0));
            }
        }
        // Wide deltas to exercise DELTA16 in splits.
        t.push((20, 290, 5.0));
        let mut coo = Coo::from_triplets(50, 300, t).unwrap();
        coo.canonicalize();
        let d = Dcsr::from_csr(&coo.to_csr(), &DcsrOptions::default());
        let x: Vec<f64> = (0..300).map(|i| ((i % 13) as f64) * 0.25 - 1.0).collect();
        let mut y_full = vec![0.0; 50];
        d.spmv(&x, &mut y_full);
        for nparts in [1usize, 2, 4, 7] {
            let splits = d.splits(nparts);
            let mut y = vec![9.0f64; 50];
            let mut rest: &mut [f64] = &mut y;
            let mut prev = 0usize;
            for split in &splits {
                let (head, tail) = rest.split_at_mut(split.row_end - prev);
                d.spmv_split_local(split, &x, head);
                rest = tail;
                prev = split.row_end;
            }
            assert_eq!(y, y_full, "nparts={nparts}");
        }
    }
}
