//! The worked example matrix from the paper, used across tests and docs.

use crate::coo::Coo;

/// The 6×6 sparse matrix of Fig. 1 in the paper:
///
/// ```text
///     ( 5.4 1.1  0   0   0   0  )
///     (  0  6.3  0  7.7  0  8.8 )
/// A = (  0   0  1.1  0   0   0  )
///     (  0   0  2.9  0  3.7 2.9 )
///     ( 9.0  0   0  1.1 4.5  0  )
///     ( 1.1  0  2.9 3.7  0  1.1 )
/// ```
///
/// Its CSR arrays (Fig. 1), CSR-DU `ctl` stream (Table I) and CSR-VI value
/// structure (Fig. 4) are all asserted in unit tests against the paper.
pub fn paper_matrix() -> Coo<f64> {
    Coo::from_triplets(
        6,
        6,
        vec![
            (0, 0, 5.4),
            (0, 1, 1.1),
            (1, 1, 6.3),
            (1, 3, 7.7),
            (1, 5, 8.8),
            (2, 2, 1.1),
            (3, 2, 2.9),
            (3, 4, 3.7),
            (3, 5, 2.9),
            (4, 0, 9.0),
            (4, 3, 1.1),
            (4, 4, 4.5),
            (5, 0, 1.1),
            (5, 2, 2.9),
            (5, 3, 3.7),
            (5, 5, 1.1),
        ],
    )
    .expect("static example is in bounds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matrix_has_16_nonzeros() {
        let m = paper_matrix();
        assert_eq!(m.nnz(), 16);
        assert_eq!(m.nrows(), 6);
        assert_eq!(m.ncols(), 6);
        assert!(m.is_canonical());
    }
}
