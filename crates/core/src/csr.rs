//! Compressed Sparse Row (CSR) — the baseline format of the paper (§II-B).
//!
//! Three arrays: `values` (non-zeros in row-major order), `col_ind` (the
//! column of each non-zero) and `row_ptr` (the offset of each row's first
//! non-zero in `values`). The paper's baseline uses 32-bit indices and
//! 64-bit values; both widths are generic here.

use crate::coo::Coo;
use crate::error::{Result, SparseError};
use crate::index::SpIndex;
use crate::scalar::Scalar;
use crate::simd::Isa;
use crate::spmv::{FormatKind, SpMv};
use crate::stats::WorkingSet;

/// A sparse matrix in Compressed Sparse Row format.
///
/// Invariants (validated in [`Csr::from_raw_parts`]):
/// * `row_ptr.len() == nrows + 1`, `row_ptr[0] == 0`,
///   `row_ptr[nrows] == nnz`, monotonically non-decreasing;
/// * `col_ind.len() == values.len() == nnz`;
/// * within each row, column indices are strictly increasing and `< ncols`.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr<I: SpIndex = u32, V: Scalar = f64> {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<I>,
    col_ind: Vec<I>,
    values: Vec<V>,
}

impl<I: SpIndex, V: Scalar> Csr<I, V> {
    /// Builds a CSR matrix from its three raw arrays, validating every
    /// invariant listed on the type.
    #[allow(clippy::needless_range_loop)] // explicit j-indexing mirrors the kernel
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<I>,
        col_ind: Vec<I>,
        values: Vec<V>,
    ) -> Result<Self> {
        check_csr_structure(nrows, ncols, &row_ptr, &col_ind, values.len())?;
        Ok(Csr { nrows, ncols, row_ptr, col_ind, values })
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The row-pointer array (`nrows + 1` entries).
    #[inline]
    pub fn row_ptr(&self) -> &[I] {
        &self.row_ptr
    }

    /// The column-index array (`nnz` entries).
    #[inline]
    pub fn col_ind(&self) -> &[I] {
        &self.col_ind
    }

    /// The value array (`nnz` entries).
    #[inline]
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// Mutable access to values (pattern-preserving updates, e.g. matrix
    /// refresh between solver restarts).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [V] {
        &mut self.values
    }

    /// Half-open range of `values`/`col_ind` positions belonging to `row`.
    #[inline]
    pub fn row_range(&self, row: usize) -> std::ops::Range<usize> {
        self.row_ptr[row].index()..self.row_ptr[row + 1].index()
    }

    /// Number of non-zeros in `row`.
    #[inline]
    pub fn row_nnz(&self, row: usize) -> usize {
        self.row_ptr[row + 1].index() - self.row_ptr[row].index()
    }

    /// Iterates over `(col, value)` pairs of one row.
    pub fn row_iter(&self, row: usize) -> impl Iterator<Item = (usize, V)> + '_ {
        let range = self.row_range(row);
        self.col_ind[range.clone()].iter().zip(&self.values[range]).map(|(c, v)| (c.index(), *v))
    }

    /// Iterates over all `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, V)> + '_ {
        (0..self.nrows).flat_map(move |r| self.row_iter(r).map(move |(c, v)| (r, c, v)))
    }

    /// Serial SpMV over the half-open row range `[row_begin, row_end)`,
    /// writing only `y[row_begin..row_end]`. This is the building block the
    /// multithreaded row-partitioned kernel uses (§II-C): each thread owns a
    /// disjoint row block and therefore a disjoint slice of `y`.
    ///
    /// The kernel follows the paper's optimization of accumulating into a
    /// register and storing `y[i]` once per row (§VI-A). The ISA is
    /// re-selected per call ([`crate::simd::selected`]); parallel plans
    /// use [`Csr::spmv_rows_local_isa`] with a snapshot instead.
    #[inline]
    pub fn spmv_rows(&self, row_begin: usize, row_end: usize, x: &[V], y: &mut [V]) {
        self.spmv_rows_dispatch(crate::simd::selected(), row_begin, row_end, 0, x, y);
    }

    /// Like [`Csr::spmv_rows`], but writes into a *local* slice whose
    /// element 0 corresponds to `row_begin` — the shape needed when a
    /// parallel driver hands each thread a disjoint sub-slice of `y`.
    #[inline]
    pub fn spmv_rows_local(&self, row_begin: usize, row_end: usize, x: &[V], y_local: &mut [V]) {
        self.spmv_rows_local_isa(crate::simd::selected(), row_begin, row_end, x, y_local);
    }

    /// [`Csr::spmv_rows_local`] with an explicit, pre-selected [`Isa`] —
    /// the entry point for parallel plans that snapshot the ISA once at
    /// construction. An unavailable ISA degrades to the scalar path.
    #[inline]
    pub fn spmv_rows_local_isa(
        &self,
        isa: Isa,
        row_begin: usize,
        row_end: usize,
        x: &[V],
        y_local: &mut [V],
    ) {
        debug_assert_eq!(y_local.len(), row_end - row_begin);
        self.spmv_rows_dispatch(isa, row_begin, row_end, row_begin, x, y_local);
    }

    /// Row-range SpMV with explicit ISA and output rebasing
    /// (`y[i - y_base]` receives row `i`).
    #[inline]
    fn spmv_rows_dispatch(
        &self,
        isa: Isa,
        row_begin: usize,
        row_end: usize,
        y_base: usize,
        x: &[V],
        y: &mut [V],
    ) {
        debug_assert!(row_end <= self.nrows);
        debug_assert_eq!(x.len(), self.ncols);
        #[cfg(target_arch = "x86_64")]
        if crate::simd::avx2_ok(isa) && self.ncols <= i32::MAX as usize {
            use crate::simd::{as_f64s, as_f64s_mut, as_u32s, avx2};
            if let (Some(rp), Some(ci), Some(vs)) =
                (as_u32s(&self.row_ptr), as_u32s(&self.col_ind), as_f64s(&self.values))
            {
                let (xs, ys) = (as_f64s(x).expect("V is f64"), as_f64s_mut(y).expect("V is f64"));
                // Safety: AVX2 verified by avx2_ok; CSR invariants give
                // in-bounds columns; ncols fits the i32 gather lanes.
                unsafe {
                    avx2::rows_k1(
                        rp,
                        ci,
                        avx2::ValSrc::Direct(vs),
                        row_begin,
                        row_end,
                        y_base,
                        xs,
                        ys,
                    );
                }
                return;
            }
        }
        let _ = isa;
        let col_ind = &self.col_ind[..];
        let values = &self.values[..];
        for i in row_begin..row_end {
            let lo = self.row_ptr[i].index();
            let hi = self.row_ptr[i + 1].index();
            let mut acc = V::zero();
            for j in lo..hi {
                acc += values[j] * x[col_ind[j].index()];
            }
            y[i - y_base] = acc;
        }
    }

    /// Transpose SpMV: `y = Aᵀ·x` without materializing the transpose
    /// (`x.len() == nrows`, `y.len() == ncols`). Scatters along rows —
    /// the access-pattern mirror of the CSC kernel. Used by
    /// normal-equation and BiCG-style solvers.
    #[allow(clippy::needless_range_loop)] // paper-style explicit index loop
    pub fn spmv_transpose(&self, x: &[V], y: &mut [V]) {
        assert_eq!(x.len(), self.nrows, "x length must equal nrows for A^T x");
        assert_eq!(y.len(), self.ncols, "y length must equal ncols for A^T x");
        for v in y.iter_mut() {
            *v = V::zero();
        }
        for i in 0..self.nrows {
            let xi = x[i];
            for j in self.row_range(i) {
                y[self.col_ind[j].index()] += self.values[j] * xi;
            }
        }
    }

    /// Multi-vector SpMM: `Y = A·X` for `k` right-hand sides stored
    /// row-major (`x[col * k + v]`, `y[row * k + v]`). Amortizes each
    /// matrix element over `k` FMAs — the classic remedy for SpMV's
    /// bandwidth-boundedness when multiple vectors are available (block
    /// solvers), complementary to the paper's compression. Raw-slice
    /// convenience wrapper over [`Csr::spmm_rows_local`]; the trait-level
    /// panel entry point is [`crate::SpMm::spmm`].
    pub fn spmm(&self, x: &[V], k: usize, y: &mut [V]) {
        assert!(k >= 1, "need at least one right-hand side");
        assert_eq!(x.len(), self.ncols * k, "x must be ncols x k row-major");
        assert_eq!(y.len(), self.nrows * k, "y must be nrows x k row-major");
        self.spmm_rows_local(0, self.nrows, x, k, y);
    }

    /// SpMM over the half-open row range `[row_begin, row_end)`, writing
    /// into a *local* panel whose row 0 corresponds to `row_begin`
    /// (`y_local[(i - row_begin) * k + v]`) — the multi-vector analogue of
    /// [`Csr::spmv_rows_local`] used by the parallel drivers. Register
    /// blocked: `k ∈ {1, 2, 4, 8}` run with a fixed-size in-register
    /// accumulator, other widths with a generic fallback. `k = 1` performs
    /// exactly the [`Csr::spmv_rows_local`] operations (bit-identical).
    #[inline]
    pub fn spmm_rows_local(
        &self,
        row_begin: usize,
        row_end: usize,
        x: &[V],
        k: usize,
        y_local: &mut [V],
    ) {
        self.spmm_rows_local_isa(crate::simd::selected(), row_begin, row_end, x, k, y_local);
    }

    /// [`Csr::spmm_rows_local`] with an explicit, pre-selected [`Isa`]
    /// (see [`Csr::spmv_rows_local_isa`]). `k ∈ {1, 2, 4, 8}` with
    /// `u32`/`f64` arrays run the AVX2 panel kernels when available;
    /// everything else falls back to the register-blocked scalar path.
    #[inline]
    pub fn spmm_rows_local_isa(
        &self,
        isa: Isa,
        row_begin: usize,
        row_end: usize,
        x: &[V],
        k: usize,
        y_local: &mut [V],
    ) {
        debug_assert!(row_end <= self.nrows);
        debug_assert_eq!(x.len(), self.ncols * k);
        debug_assert_eq!(y_local.len(), (row_end - row_begin) * k);
        #[cfg(target_arch = "x86_64")]
        if crate::simd::avx2_ok(isa)
            && matches!(k, 1 | 2 | 4 | 8)
            && self.ncols <= i32::MAX as usize
        {
            use crate::simd::{as_f64s, as_f64s_mut, as_u32s, avx2};
            if let (Some(rp), Some(ci), Some(vs)) =
                (as_u32s(&self.row_ptr), as_u32s(&self.col_ind), as_f64s(&self.values))
            {
                let xs = as_f64s(x).expect("V is f64");
                let ys = as_f64s_mut(y_local).expect("V is f64");
                let src = avx2::ValSrc::Direct(vs);
                // Safety: AVX2 verified by avx2_ok; CSR invariants give
                // in-bounds columns; ncols fits the i32 gather lanes.
                unsafe {
                    match k {
                        1 => avx2::rows_k1(rp, ci, src, row_begin, row_end, row_begin, xs, ys),
                        2 => avx2::rows_k2(rp, ci, src, row_begin, row_end, row_begin, xs, ys),
                        4 => avx2::rows_k4(rp, ci, src, row_begin, row_end, row_begin, xs, ys),
                        _ => avx2::rows_k8(rp, ci, src, row_begin, row_end, row_begin, xs, ys),
                    }
                }
                return;
            }
        }
        let _ = isa;
        crate::spmm::with_row_acc!(k, acc => {
            self.spmm_rows_acc(row_begin, row_end, x, k, y_local, &mut acc)
        });
    }

    /// Accumulator-generic SpMM row loop (monomorphized per panel width).
    #[inline]
    fn spmm_rows_acc<A: crate::spmm::RowAcc<V>>(
        &self,
        row_begin: usize,
        row_end: usize,
        x: &[V],
        k: usize,
        y_local: &mut [V],
        acc: &mut A,
    ) {
        let col_ind = &self.col_ind[..];
        let values = &self.values[..];
        for i in row_begin..row_end {
            let lo = self.row_ptr[i].index();
            let hi = self.row_ptr[i + 1].index();
            acc.reset();
            for j in lo..hi {
                let c = col_ind[j].index();
                acc.fma(values[j], &x[c * k..c * k + k]);
            }
            let base = (i - row_begin) * k;
            acc.store(&mut y_local[base..base + k]);
        }
    }

    /// Converts back to COO (canonical order).
    pub fn to_coo(&self) -> Coo<V> {
        Coo::from_triplets(self.nrows, self.ncols, self.iter())
            .expect("CSR invariants guarantee in-bounds entries")
    }

    /// Transposes into a new CSR (equivalently: interprets this matrix as
    /// CSC of the transpose). O(nnz + ncols).
    ///
    /// Returns [`SparseError::IndexOverflow`] when a *row* index of this
    /// matrix does not fit in `I`: CSR never stores row indices, so
    /// `nrows` may exceed `I::MAX` for a valid matrix — but the transpose
    /// must store them as its column indices.
    pub fn transpose(&self) -> Result<Csr<I, V>> {
        if self.nrows > 0 {
            // Checking only the largest row index keeps the hot loop free
            // of per-element branches.
            I::from_usize(self.nrows - 1)?;
        }
        let mut counts = vec![0usize; self.ncols + 1];
        for c in &self.col_ind {
            counts[c.index() + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let mut row_ptr: Vec<I> = Vec::with_capacity(self.ncols + 1);
        for &c in &counts {
            // Safe: every prefix count <= nnz, and nnz fits in I because
            // self.row_ptr already stores it.
            row_ptr.push(I::from_usize_unchecked(c));
        }
        let mut col_ind: Vec<I> = vec![I::default(); self.nnz()];
        let mut values: Vec<V> = vec![V::zero(); self.nnz()];
        let mut next = counts;
        for r in 0..self.nrows {
            for (c, v) in self.row_iter(r) {
                let dst = next[c];
                next[c] += 1;
                col_ind[dst] = I::from_usize_unchecked(r); // r < nrows, checked above
                values[dst] = v;
            }
        }
        Ok(Csr { nrows: self.ncols, ncols: self.nrows, row_ptr, col_ind, values })
    }

    /// Working-set breakdown per the paper's §II-B formula.
    pub fn working_set(&self) -> WorkingSet {
        WorkingSet::for_csr::<I, V>(self.nrows, self.ncols, self.nnz())
    }

    /// Total bytes of the matrix structure + values (excluding the x/y
    /// vectors): `nnz*(idx+val) + (nrows+1)*idx`.
    pub fn size_bytes(&self) -> usize {
        self.nnz() * (I::BYTES + V::BYTES) + (self.nrows + 1) * I::BYTES
    }

    /// Number of *unique* value bit patterns — the denominator of the
    /// total-to-unique (`ttu`) ratio that gates CSR-VI applicability (§V).
    pub fn unique_values(&self) -> usize {
        let mut set: std::collections::HashSet<V::Bits> =
            std::collections::HashSet::with_capacity(self.values.len().min(1 << 20));
        for v in &self.values {
            set.insert(v.to_bits());
        }
        set.len()
    }

    /// Total-to-unique values ratio; `nnz / unique_values` (§VI-E). Returns
    /// `f64::INFINITY` for an empty values set... which cannot happen for a
    /// matrix with nnz > 0; 0-nnz matrices report a ratio of 0.
    pub fn ttu(&self) -> f64 {
        if self.nnz() == 0 {
            return 0.0;
        }
        self.nnz() as f64 / self.unique_values() as f64
    }
}

/// Checks the CSR invariants (also CSC's, with rows/columns swapped)
/// against borrowed arrays; shared by [`Csr::from_raw_parts`] and the
/// `validate` methods of the CSR-layout formats.
#[allow(clippy::needless_range_loop)] // explicit j-indexing mirrors the kernel
pub(crate) fn check_csr_structure<I: SpIndex>(
    nrows: usize,
    ncols: usize,
    row_ptr: &[I],
    col_ind: &[I],
    nvalues: usize,
) -> Result<()> {
    if row_ptr.len() != nrows + 1 {
        return Err(SparseError::MalformedPointers(format!(
            "row_ptr length {} != nrows + 1 = {}",
            row_ptr.len(),
            nrows + 1
        )));
    }
    if col_ind.len() != nvalues {
        return Err(SparseError::MalformedPointers(format!(
            "col_ind length {} != values length {}",
            col_ind.len(),
            nvalues
        )));
    }
    if row_ptr[0].index() != 0 {
        return Err(SparseError::MalformedPointers("row_ptr[0] != 0".into()));
    }
    if row_ptr[nrows].index() != col_ind.len() {
        return Err(SparseError::MalformedPointers(format!(
            "row_ptr[nrows] = {} != nnz = {}",
            row_ptr[nrows].index(),
            col_ind.len()
        )));
    }
    for r in 0..nrows {
        let (lo, hi) = (row_ptr[r].index(), row_ptr[r + 1].index());
        if lo > hi {
            return Err(SparseError::MalformedPointers(format!("row_ptr decreases at row {r}")));
        }
        let mut prev: Option<usize> = None;
        for j in lo..hi {
            let c = col_ind[j].index();
            if c >= ncols {
                return Err(SparseError::IndexOutOfBounds { row: r, col: c, nrows, ncols });
            }
            if let Some(p) = prev {
                if c <= p {
                    return Err(SparseError::UnsortedIndices { row: r });
                }
            }
            prev = Some(c);
        }
    }
    Ok(())
}

impl<I: SpIndex, V: Scalar> SpMv<V> for Csr<I, V> {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn kind(&self) -> FormatKind {
        FormatKind::Csr
    }
    fn size_bytes(&self) -> usize {
        Csr::size_bytes(self)
    }

    fn spmv(&self, x: &[V], y: &mut [V]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        self.spmv_rows(0, self.nrows, x, y);
    }

    fn validate(&self) -> std::result::Result<(), SparseError> {
        check_csr_structure(self.nrows, self.ncols, &self.row_ptr, &self.col_ind, self.values.len())
    }
}

impl<I: SpIndex, V: Scalar> crate::spmm::SpMm<V> for Csr<I, V> {
    fn spmm(&self, x: crate::DenseBlock<'_, V>, mut y: crate::DenseBlockMut<'_, V>) {
        let k = crate::spmm::assert_panel_shapes(self.nrows, self.ncols, &x, &y);
        self.spmm_rows_local(0, self.nrows, x.data(), k, y.data_mut());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::paper_matrix;

    #[test]
    fn paper_fig1_arrays() {
        // Fig. 1 of the paper: the 6x6 example matrix and its CSR arrays.
        let csr: Csr = paper_matrix().to_csr();
        assert_eq!(csr.row_ptr(), &[0, 2, 5, 6, 9, 12, 16]);
        assert_eq!(csr.col_ind(), &[0, 1, 1, 3, 5, 2, 2, 4, 5, 0, 3, 4, 0, 2, 3, 5]);
        assert_eq!(
            csr.values(),
            &[5.4, 1.1, 6.3, 7.7, 8.8, 1.1, 2.9, 3.7, 2.9, 9.0, 1.1, 4.5, 1.1, 2.9, 3.7, 1.1]
        );
    }

    #[test]
    fn validation_rejects_bad_row_ptr() {
        let r = Csr::<u32, f64>::from_raw_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]);
        assert!(matches!(r, Err(SparseError::MalformedPointers(_))));
        let r = Csr::<u32, f64>::from_raw_parts(2, 2, vec![1, 1, 2], vec![0, 1], vec![1.0, 2.0]);
        assert!(matches!(r, Err(SparseError::MalformedPointers(_))));
        let r = Csr::<u32, f64>::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]);
        assert!(matches!(r, Err(SparseError::MalformedPointers(_))));
    }

    #[test]
    fn validation_rejects_unsorted_and_oob_columns() {
        let r = Csr::<u32, f64>::from_raw_parts(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 2.0]);
        assert!(matches!(r, Err(SparseError::UnsortedIndices { row: 0 })));
        let r = Csr::<u32, f64>::from_raw_parts(1, 3, vec![0, 1], vec![3], vec![1.0]);
        assert!(matches!(r, Err(SparseError::IndexOutOfBounds { .. })));
        // duplicates (equal consecutive columns) are also rejected
        let r = Csr::<u32, f64>::from_raw_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]);
        assert!(matches!(r, Err(SparseError::UnsortedIndices { row: 0 })));
    }

    #[test]
    fn spmv_matches_coo_reference() {
        let coo = paper_matrix();
        let csr: Csr = coo.to_csr();
        let x: Vec<f64> = (0..6).map(|i| 0.5 + i as f64).collect();
        let mut y_ref = vec![0.0; 6];
        let mut y = vec![0.0; 6];
        coo.spmv_reference(&x, &mut y_ref);
        csr.spmv(&x, &mut y);
        assert_eq!(y, y_ref);
    }

    #[test]
    fn spmv_rows_partial_range() {
        let csr: Csr = paper_matrix().to_csr();
        let x = vec![1.0; 6];
        let mut y_full = vec![0.0; 6];
        csr.spmv(&x, &mut y_full);

        let mut y_parts = vec![0.0; 6];
        csr.spmv_rows(0, 3, &x, &mut y_parts);
        csr.spmv_rows(3, 6, &x, &mut y_parts);
        assert_eq!(y_parts, y_full);
    }

    #[test]
    fn transpose_involution() {
        let csr: Csr = paper_matrix().to_csr();
        let tt = csr.transpose().unwrap().transpose().unwrap();
        assert_eq!(tt, csr);
    }

    #[test]
    fn transpose_spmv_consistency() {
        // (A^T x)_i == sum over rows r of A[r, i] * x[r]
        let coo = paper_matrix();
        let csr: Csr = coo.to_csr();
        let t = csr.transpose().unwrap();
        let x = vec![1.0, -1.0, 2.0, 0.5, 3.0, -2.0];
        let mut y_t = vec![0.0; 6];
        t.spmv(&x, &mut y_t);
        let mut y_ref = vec![0.0; 6];
        coo.transpose().spmv_reference(&x, &mut y_ref);
        assert_eq!(y_t, y_ref);
    }

    #[test]
    fn ttu_of_paper_matrix() {
        // Values: 5.4 1.1 6.3 7.7 8.8 1.1 2.9 3.7 2.9 9.0 1.1 4.5 1.1 2.9 3.7 1.1
        // Unique: {5.4, 1.1, 6.3, 7.7, 8.8, 2.9, 3.7, 9.0, 4.5} = 9
        let csr: Csr = paper_matrix().to_csr();
        assert_eq!(csr.unique_values(), 9);
        assert!((csr.ttu() - 16.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn size_bytes_matches_formula() {
        let csr: Csr = paper_matrix().to_csr();
        // nnz * (4 + 8) + (6 + 1) * 4
        assert_eq!(csr.size_bytes(), 16 * 12 + 7 * 4);
    }

    #[test]
    fn row_iter_and_iter() {
        let csr: Csr = paper_matrix().to_csr();
        let row1: Vec<_> = csr.row_iter(1).collect();
        assert_eq!(row1, vec![(1, 6.3), (3, 7.7), (5, 8.8)]);
        assert_eq!(csr.iter().count(), 16);
    }

    #[test]
    fn spmv_transpose_matches_transposed_spmv() {
        let coo = paper_matrix();
        let csr: Csr = coo.to_csr();
        let t = csr.transpose().unwrap();
        let x: Vec<f64> = (0..6).map(|i| 0.3 * i as f64 - 1.0).collect();
        let mut y_t = vec![0.0; 6];
        let mut y_direct = vec![0.0; 6];
        t.spmv(&x, &mut y_t);
        csr.spmv_transpose(&x, &mut y_direct);
        for (a, b) in y_direct.iter().zip(&y_t) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn spmv_transpose_rectangular() {
        let coo = Coo::from_triplets(2, 4, vec![(0, 3, 2.0), (1, 0, 1.0)]).unwrap();
        let csr: Csr = coo.to_csr();
        let mut y = vec![0.0; 4];
        csr.spmv_transpose(&[1.0, 10.0], &mut y);
        assert_eq!(y, vec![10.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn spmm_matches_repeated_spmv() {
        let coo = paper_matrix();
        let csr: Csr = coo.to_csr();
        let k = 3;
        // Row-major X: x[col * k + v].
        let x: Vec<f64> = (0..6 * k).map(|i| (i as f64) * 0.1 - 0.7).collect();
        let mut y = vec![0.0; 6 * k];
        csr.spmm(&x, k, &mut y);
        for v in 0..k {
            let xv: Vec<f64> = (0..6).map(|c| x[c * k + v]).collect();
            let mut yv = vec![0.0; 6];
            csr.spmv(&xv, &mut yv);
            for r in 0..6 {
                assert!((y[r * k + v] - yv[r]).abs() < 1e-12, "rhs {v} row {r}");
            }
        }
    }

    #[test]
    fn spmm_single_rhs_equals_spmv() {
        let csr: Csr = paper_matrix().to_csr();
        let x: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let mut y1 = vec![0.0; 6];
        let mut y2 = vec![0.0; 6];
        csr.spmv(&x, &mut y1);
        csr.spmm(&x, 1, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn u16_index_csr_works() {
        let coo = paper_matrix();
        let csr = coo.to_csr_with_index::<u16>().unwrap();
        let x = vec![1.0; 6];
        let mut y = vec![0.0; 6];
        let mut y_ref = vec![0.0; 6];
        csr.spmv(&x, &mut y);
        coo.spmv_reference(&x, &mut y_ref);
        assert_eq!(y, y_ref);
        assert_eq!(csr.size_bytes(), 16 * 10 + 7 * 2);
    }

    #[test]
    fn f32_values_csr_works() {
        let coo = Coo::<f32>::from_triplets(2, 2, vec![(0, 0, 2.0f32), (1, 1, 3.0f32)]).unwrap();
        let csr: Csr<u32, f32> = coo.to_csr_with_index().unwrap();
        let mut y = vec![0.0f32; 2];
        csr.spmv(&[1.0, 1.0], &mut y);
        assert_eq!(y, vec![2.0, 3.0]);
    }
}
