//! Ellpack-Itpack (ELL) — fixed-width row storage (§III-A baseline).
//!
//! Every row is padded to the length of the longest row; columns and values
//! are stored in two dense `nrows x width` arrays (row-major here). Great
//! for vector machines and matrices with uniform row lengths, disastrous
//! when one long row inflates `width`.

use crate::coo::Coo;
use crate::csr::Csr;
use crate::error::Result;
use crate::index::SpIndex;
use crate::scalar::Scalar;
use crate::spmv::{FormatKind, SpMv};

/// A sparse matrix in Ellpack-Itpack format.
///
/// Padding slots store column index 0 and value 0, which contribute
/// nothing to the product (the standard convention).
#[derive(Debug, Clone, PartialEq)]
pub struct Ell<I: SpIndex = u32, V: Scalar = f64> {
    nrows: usize,
    ncols: usize,
    nnz: usize,
    width: usize,
    col_ind: Vec<I>,
    values: Vec<V>,
}

impl<I: SpIndex, V: Scalar> Ell<I, V> {
    /// Builds ELL from CSR. Fails only on index overflow.
    pub fn from_csr(csr: &Csr<I, V>) -> Result<Ell<I, V>> {
        let width = (0..csr.nrows()).map(|r| csr.row_nnz(r)).max().unwrap_or(0);
        let mut col_ind = vec![I::from_usize(0)?; csr.nrows() * width];
        let mut values = vec![V::zero(); csr.nrows() * width];
        for r in 0..csr.nrows() {
            for (k, (c, v)) in csr.row_iter(r).enumerate() {
                col_ind[r * width + k] = I::from_usize(c)?;
                values[r * width + k] = v;
            }
        }
        Ok(Ell { nrows: csr.nrows(), ncols: csr.ncols(), nnz: csr.nnz(), width, col_ind, values })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Padded row width (longest row's nnz).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Fraction of stored slots that are real non-zeros.
    pub fn fill_ratio(&self) -> f64 {
        if self.values.is_empty() {
            return 1.0;
        }
        self.nnz as f64 / self.values.len() as f64
    }

    /// Converts back to COO, dropping padding.
    pub fn to_coo(&self) -> Coo<V> {
        let mut coo = Coo::with_capacity(self.nrows, self.ncols, self.nnz);
        for r in 0..self.nrows {
            for k in 0..self.width {
                let v = self.values[r * self.width + k];
                if v != V::zero() {
                    coo.push(r, self.col_ind[r * self.width + k].index(), v)
                        .expect("in bounds by construction");
                }
            }
        }
        coo
    }
}

impl<I: SpIndex, V: Scalar> SpMv<V> for Ell<I, V> {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn nnz(&self) -> usize {
        self.nnz
    }
    fn kind(&self) -> FormatKind {
        FormatKind::Ell
    }
    fn size_bytes(&self) -> usize {
        self.col_ind.len() * I::BYTES + self.values.len() * V::BYTES
    }

    fn spmv(&self, x: &[V], y: &mut [V]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        for (r, yv) in y.iter_mut().enumerate() {
            let mut acc = V::zero();
            let base = r * self.width;
            for k in 0..self.width {
                acc += self.values[base + k] * x[self.col_ind[base + k].index()];
            }
            *yv = acc;
        }
    }

    fn validate(&self) -> std::result::Result<(), crate::error::SparseError> {
        use crate::error::SparseError;
        if self.col_ind.len() != self.nrows * self.width
            || self.values.len() != self.nrows * self.width
        {
            return Err(SparseError::MalformedPointers(format!(
                "ELL arrays must be nrows * width = {} entries (col_ind {}, values {})",
                self.nrows * self.width,
                self.col_ind.len(),
                self.values.len()
            )));
        }
        let mut stored = 0usize;
        for r in 0..self.nrows {
            for k in 0..self.width {
                let c = self.col_ind[r * self.width + k].index();
                // Padding stores column 0 (always legal when width > 0 implies
                // ncols > 0); any slot may point at column 0, but nothing may
                // point past the matrix.
                if c >= self.ncols {
                    return Err(SparseError::IndexOutOfBounds {
                        row: r,
                        col: c,
                        nrows: self.nrows,
                        ncols: self.ncols,
                    });
                }
                if self.values[r * self.width + k] != V::zero() {
                    stored += 1;
                }
            }
        }
        if stored > self.nnz {
            return Err(SparseError::InvalidFormat(format!(
                "recorded nnz {} below stored non-zeros {stored}",
                self.nnz
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::paper_matrix;

    #[test]
    fn width_is_longest_row() {
        let ell = Ell::from_csr(&paper_matrix().to_csr()).unwrap();
        assert_eq!(ell.width(), 4); // row 5 has 4 non-zeros
        assert_eq!(ell.fill_ratio(), 16.0 / 24.0);
    }

    #[test]
    fn spmv_matches_reference() {
        let coo = paper_matrix();
        let ell = Ell::from_csr(&coo.to_csr()).unwrap();
        let x: Vec<f64> = (0..6).map(|i| (i as f64) - 2.5).collect();
        let mut y = vec![1.0; 6];
        let mut y_ref = vec![0.0; 6];
        ell.spmv(&x, &mut y);
        coo.spmv_reference(&x, &mut y_ref);
        assert_eq!(y, y_ref);
    }

    #[test]
    fn roundtrip() {
        let coo = paper_matrix();
        let ell = Ell::from_csr(&coo.to_csr()).unwrap();
        let mut back = ell.to_coo();
        back.canonicalize();
        assert_eq!(back.entries(), coo.entries());
    }

    #[test]
    fn empty_matrix_width_zero() {
        let coo: Coo<f64> = Coo::new(3, 3);
        let ell = Ell::from_csr(&coo.to_csr()).unwrap();
        assert_eq!(ell.width(), 0);
        let mut y = vec![2.0; 3];
        ell.spmv(&[1.0; 3], &mut y);
        assert_eq!(y, vec![0.0; 3]);
    }
}
