//! Binary serialization of the compressed formats.
//!
//! Compression is only worth paying for once; this module lets a
//! pre-encoded matrix be persisted and memory-loaded later (e.g. a solver
//! service encoding at ingest time). The container is a simple
//! little-endian layout with a magic/version header and per-format tags —
//! deliberately dependency-free and stable.
//!
//! Concrete types only (`u32` indices, `f64` values — the paper's
//! baseline widths); other widths can be converted on load.
//!
//! # Container layout
//!
//! Version 2 (written by this build):
//!
//! ```text
//! "SPMV" magic | u16 version | u8 format tag
//! u64 payload length | u32 payload CRC-32
//! payload:
//!   scalar u64 fields (nrows, ncols, ...)
//!   sections, each:  u64 element count | raw LE bytes | u32 section CRC-32
//! ```
//!
//! Version 1 (still readable) had no declared length and no checksums:
//! the header was followed directly by the scalar fields and `u64
//! len`-prefixed arrays.
//!
//! # Trust boundaries
//!
//! A container is a long-lived artifact that crosses machines and tenants,
//! so the readers treat every byte as untrusted:
//!
//! * **Truncation** is detected *before* parsing: the v2 header declares
//!   the payload length, and a short read fails immediately.
//! * **Corruption** is detected by CRC-32 checksums — one over the whole
//!   payload and one per section (so the error names the damaged array).
//!   A bit-flipped `f64` is rejected with
//!   [`SparseError::ChecksumMismatch`] instead of silently poisoning every
//!   subsequent SpMV. CRC-32 is an integrity check against *accidental*
//!   corruption; it is **not** cryptographic authentication — an attacker
//!   who can rewrite the file can also rewrite the checksums. Sign the
//!   file externally if you need provenance.
//! * **Resource exhaustion** is bounded by [`LoadLimits`]: every declared
//!   length is checked against the configured ceilings *before any
//!   allocation*, so a 16-byte file declaring `len = u64::MAX` can never
//!   trigger a multi-gigabyte allocation. The default limits are generous
//!   (see [`LoadLimits::default`]); [`LoadLimits::unlimited`] is the
//!   escape hatch for trusted inputs.
//! * **Structural invariants** are re-established on load regardless of
//!   checksums: CSR pointer monotonicity and column bounds
//!   ([`Csr::from_raw_parts`]), full bounds-checked re-validation of the
//!   CSR-DU ctl stream ([`CsrDu::from_parts_checked`]), and value-index
//!   range checks ([`CsrVi::from_parts_checked`]). Checksums catch what
//!   structure cannot (a flipped value bit yields a perfectly well-formed
//!   matrix); structure catches what checksums cannot (a well-checksummed
//!   file written by a buggy or malicious encoder).

use crate::crc32::crc32;
use crate::csc::Csc;
use crate::csr::Csr;
use crate::csr_du::CsrDu;
use crate::csr_vi::{CsrVi, ValInd};
use crate::error::SparseError;
use crate::spmv::SpMv;
use std::io::{Read, Write};

/// Container magic bytes.
pub const MAGIC: &[u8; 4] = b"SPMV";
/// Current container version (always written).
pub const VERSION: u16 = 2;
/// Oldest container version the readers still accept.
pub const MIN_SUPPORTED_VERSION: u16 = 1;

const TAG_CSR: u8 = 1;
const TAG_CSR_DU: u8 = 2;
const TAG_CSR_VI: u8 = 3;
const TAG_CSC: u8 = 4;

type Result<T> = std::result::Result<T, SparseError>;

fn io_err(e: std::io::Error) -> SparseError {
    SparseError::Parse(format!("io error: {e}"))
}

// ---------------------------------------------------------------------
// load limits
// ---------------------------------------------------------------------

/// Ceilings applied to *declared* sizes in untrusted inputs before any
/// allocation or parsing work is done on their behalf.
///
/// The defaults accommodate any matrix this workspace can realistically
/// process (a billion rows, four billion non-zeros, 8 GiB of container
/// payload) while refusing absurd headers outright. Tune them down for
/// multi-tenant ingest (e.g. a service accepting uploads) or up — or off
/// with [`LoadLimits::unlimited`] — for trusted batch jobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadLimits {
    /// Maximum accepted number of rows.
    pub max_nrows: usize,
    /// Maximum accepted number of columns.
    pub max_ncols: usize,
    /// Maximum accepted number of non-zeros (also caps array lengths).
    pub max_nnz: usize,
    /// Maximum accepted total payload bytes (container body / byte arrays).
    pub max_bytes: u64,
}

impl Default for LoadLimits {
    fn default() -> Self {
        LoadLimits { max_nrows: 1 << 30, max_ncols: 1 << 30, max_nnz: 1 << 32, max_bytes: 8 << 30 }
    }
}

impl LoadLimits {
    /// No limits at all — for fully trusted inputs only.
    pub fn unlimited() -> LoadLimits {
        LoadLimits {
            max_nrows: usize::MAX,
            max_ncols: usize::MAX,
            max_nnz: usize::MAX,
            max_bytes: u64::MAX,
        }
    }

    /// Tight limits suitable for fuzzing and tests: nothing a hostile
    /// input declares can cost more than a few megabytes.
    pub fn strict_for_tests() -> LoadLimits {
        LoadLimits { max_nrows: 1 << 16, max_ncols: 1 << 16, max_nnz: 1 << 20, max_bytes: 4 << 20 }
    }

    fn check(&self, what: &str, requested: u64, limit: u64) -> Result<()> {
        if requested > limit {
            return Err(SparseError::ResourceLimit { what: what.into(), requested, limit });
        }
        Ok(())
    }

    fn check_dims(&self, nrows: u64, ncols: u64) -> Result<()> {
        self.check("nrows", nrows, self.max_nrows as u64)?;
        self.check("ncols", ncols, self.max_ncols as u64)
    }

    fn check_count(&self, what: &str, len: u64) -> Result<()> {
        self.check(what, len, self.max_nnz as u64)
    }

    fn check_bytes(&self, what: &str, len: u64) -> Result<()> {
        self.check(what, len, self.max_bytes)
    }
}

/// Largest up-front allocation taken on the word of an untrusted v1
/// header (v2 validates the declared payload length against the actual
/// bytes first, so it can size exactly).
const PREALLOC_CAP: usize = 1 << 16;

// ---------------------------------------------------------------------
// v2 writer: payload assembled in memory, sections carry their own CRC
// ---------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a section: `u64 count | data | u32 crc(data)`.
fn put_section(out: &mut Vec<u8>, count: u64, data: &[u8]) {
    put_u64(out, count);
    out.extend_from_slice(data);
    out.extend_from_slice(&crc32(data).to_le_bytes());
}

fn put_u32_section(out: &mut Vec<u8>, data: &[u32]) {
    let mut bytes = Vec::with_capacity(data.len() * 4);
    for &v in data {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    put_section(out, data.len() as u64, &bytes);
}

fn put_u16_section(out: &mut Vec<u8>, data: &[u16]) {
    let mut bytes = Vec::with_capacity(data.len() * 2);
    for &v in data {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    put_section(out, data.len() as u64, &bytes);
}

fn put_f64_section(out: &mut Vec<u8>, data: &[f64]) {
    let mut bytes = Vec::with_capacity(data.len() * 8);
    for &v in data {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    put_section(out, data.len() as u64, &bytes);
}

fn put_byte_section(out: &mut Vec<u8>, data: &[u8]) {
    put_section(out, data.len() as u64, data);
}

/// Writes the v2 frame: header, declared payload length, whole-payload
/// checksum, payload.
fn write_frame<W: Write>(w: &mut W, tag: u8, payload: &[u8]) -> Result<()> {
    w.write_all(MAGIC).map_err(io_err)?;
    w.write_all(&VERSION.to_le_bytes()).map_err(io_err)?;
    w.write_all(&[tag]).map_err(io_err)?;
    w.write_all(&(payload.len() as u64).to_le_bytes()).map_err(io_err)?;
    w.write_all(&crc32(payload).to_le_bytes()).map_err(io_err)?;
    w.write_all(payload).map_err(io_err)
}

// ---------------------------------------------------------------------
// v2 reader: in-memory payload cursor
// ---------------------------------------------------------------------

/// Bounds-checked cursor over the verified payload buffer.
struct Payload<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Payload<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| SparseError::Parse(format!("payload truncated inside {what}")))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    /// Reads one section (`u64 count | data | u32 crc`), enforcing
    /// `count <= max_elems` *before* touching the data and verifying the
    /// section checksum after. Returns the raw data bytes.
    fn section(
        &mut self,
        what: &str,
        elem_bytes: usize,
        max_elems: u64,
        limits: &LoadLimits,
    ) -> Result<(u64, &'a [u8])> {
        let count = self.u64(what)?;
        limits.check(what, count, max_elems)?;
        let nbytes = (count as usize).checked_mul(elem_bytes).ok_or_else(|| {
            SparseError::Parse(format!("section {what} byte size overflows usize"))
        })?;
        let data = self.take(nbytes, what)?;
        let stored = u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes"));
        let computed = crc32(data);
        if stored != computed {
            return Err(SparseError::ChecksumMismatch { section: what.into(), stored, computed });
        }
        Ok((count, data))
    }

    fn u32_section(&mut self, what: &str, max: u64, limits: &LoadLimits) -> Result<Vec<u32>> {
        let (_, data) = self.section(what, 4, max, limits)?;
        Ok(data.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().expect("4"))).collect())
    }

    fn u16_section(&mut self, what: &str, max: u64, limits: &LoadLimits) -> Result<Vec<u16>> {
        let (_, data) = self.section(what, 2, max, limits)?;
        Ok(data.chunks_exact(2).map(|c| u16::from_le_bytes(c.try_into().expect("2"))).collect())
    }

    fn f64_section(&mut self, what: &str, max: u64, limits: &LoadLimits) -> Result<Vec<f64>> {
        let (_, data) = self.section(what, 8, max, limits)?;
        Ok(data.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().expect("8"))).collect())
    }

    fn byte_section(&mut self, what: &str, limits: &LoadLimits) -> Result<Vec<u8>> {
        let (_, data) = self.section(what, 1, limits.max_bytes, limits)?;
        Ok(data.to_vec())
    }
}

/// Header parse result: version and format tag.
struct Header {
    version: u16,
    tag: u8,
}

fn read_header<R: Read>(r: &mut R) -> Result<Header> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(io_err)?;
    if &magic != MAGIC {
        return Err(SparseError::Parse("bad magic: not an SPMV container".into()));
    }
    let mut ver = [0u8; 2];
    r.read_exact(&mut ver).map_err(io_err)?;
    let version = u16::from_le_bytes(ver);
    if !(MIN_SUPPORTED_VERSION..=VERSION).contains(&version) {
        return Err(SparseError::UnsupportedVersion { found: version, max_supported: VERSION });
    }
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag).map_err(io_err)?;
    Ok(Header { version, tag: tag[0] })
}

fn check_tag(h: &Header, expected: u8, name: &str) -> Result<()> {
    if h.tag != expected {
        return Err(SparseError::Parse(format!("expected {name} container, found tag {}", h.tag)));
    }
    Ok(())
}

/// Reads the declared-length, checksum-verified v2 payload. The length is
/// checked against `limits.max_bytes` *before* any allocation; the buffer
/// then grows only as bytes actually arrive, so a truncated file costs at
/// most its real size.
fn read_payload<R: Read>(r: &mut R, limits: &LoadLimits) -> Result<Vec<u8>> {
    let mut head = [0u8; 12];
    r.read_exact(&mut head).map_err(io_err)?;
    let declared = u64::from_le_bytes(head[..8].try_into().expect("8 bytes"));
    let stored = u32::from_le_bytes(head[8..].try_into().expect("4 bytes"));
    limits.check_bytes("payload bytes", declared)?;
    let mut payload = Vec::with_capacity((declared as usize).min(PREALLOC_CAP));
    let mut remaining = declared as usize;
    let mut chunk = [0u8; 64 * 1024];
    while remaining > 0 {
        let take = remaining.min(chunk.len());
        r.read_exact(&mut chunk[..take])
            .map_err(|e| SparseError::Parse(format!("payload truncated: {e}")))?;
        payload.extend_from_slice(&chunk[..take]);
        remaining -= take;
    }
    let computed = crc32(&payload);
    if stored != computed {
        return Err(SparseError::ChecksumMismatch { section: "payload".into(), stored, computed });
    }
    Ok(payload)
}

// ---------------------------------------------------------------------
// v1 streaming readers (no checksums, length-prefixed arrays)
// ---------------------------------------------------------------------

fn read_u64_v1<R: Read>(r: &mut R) -> Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf).map_err(io_err)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_u32_vec_v1<R: Read>(r: &mut R, what: &str, limits: &LoadLimits) -> Result<Vec<u32>> {
    let len = read_u64_v1(r)?;
    limits.check_count(what, len)?;
    // Never pre-allocate from an untrusted length: grow as bytes actually
    // arrive (read_exact fails fast on truncated input).
    let mut out = Vec::with_capacity((len as usize).min(PREALLOC_CAP));
    let mut buf = [0u8; 4];
    for _ in 0..len {
        r.read_exact(&mut buf).map_err(io_err)?;
        out.push(u32::from_le_bytes(buf));
    }
    Ok(out)
}

fn read_f64_vec_v1<R: Read>(r: &mut R, what: &str, limits: &LoadLimits) -> Result<Vec<f64>> {
    let len = read_u64_v1(r)?;
    limits.check_count(what, len)?;
    let mut out = Vec::with_capacity((len as usize).min(PREALLOC_CAP));
    let mut buf = [0u8; 8];
    for _ in 0..len {
        r.read_exact(&mut buf).map_err(io_err)?;
        out.push(f64::from_le_bytes(buf));
    }
    Ok(out)
}

fn read_bytes_v1<R: Read>(r: &mut R, what: &str, limits: &LoadLimits) -> Result<Vec<u8>> {
    let len = read_u64_v1(r)?;
    limits.check_bytes(what, len)?;
    // Chunked read: no untrusted up-front allocation.
    let mut out = Vec::with_capacity((len as usize).min(PREALLOC_CAP));
    let mut remaining = len as usize;
    let mut chunk = [0u8; 64 * 1024];
    while remaining > 0 {
        let take = remaining.min(chunk.len());
        r.read_exact(&mut chunk[..take]).map_err(io_err)?;
        out.extend_from_slice(&chunk[..take]);
        remaining -= take;
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------

/// Compact identity of a matrix payload: the container-v2 whole-payload
/// CRC-32 plus the shape `(nrows, ncols, nnz)`.
///
/// The CRC alone is a 32-bit hash — collisions are unlikely but legal,
/// and the same CRC with *different* dims genuinely occurs across
/// container versions (v1 bodies hash differently than v2 payloads).
/// Consumers keying caches on a fingerprint must therefore treat a CRC
/// match with a shape mismatch as a **miss**, never as a hit — see
/// [`Fingerprint::matches_shape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    /// CRC-32 over the container payload bytes (v2: the stored
    /// whole-payload checksum; v1: computed over the raw body).
    pub crc: u32,
    /// Number of rows.
    pub nrows: u64,
    /// Number of columns.
    pub ncols: u64,
    /// Number of stored non-zeros.
    pub nnz: u64,
}

impl Fingerprint {
    /// `true` when this fingerprint's recorded shape matches the given
    /// dimensions — the guard that keeps a CRC collision (or a stale
    /// cache entry) from impersonating a different matrix.
    pub fn matches_shape(&self, nrows: usize, ncols: usize, nnz: usize) -> bool {
        self.nrows == nrows as u64 && self.ncols == ncols as u64 && self.nnz == nnz as u64
    }
}

/// Fingerprint of an in-memory CSR matrix: CRC-32 over exactly the
/// payload bytes [`write_csr`] produces, so it equals the stored
/// whole-payload checksum of the matrix's v2 CSR container byte for
/// byte — fingerprinting in memory and fingerprinting the file agree.
pub fn fingerprint_csr(m: &Csr<u32, f64>) -> Fingerprint {
    let payload = csr_payload(m);
    Fingerprint {
        crc: crc32(&payload),
        nrows: m.nrows() as u64,
        ncols: m.ncols() as u64,
        nnz: m.nnz() as u64,
    }
}

/// Reads a [`Fingerprint`] from any supported container version without
/// materializing the matrix.
///
/// * **v2**: the payload is read under `limits` and verified against the
///   stored whole-payload CRC; that checksum is the fingerprint key and
///   the shape comes from a minimal scan of the payload head.
/// * **v1** (no declared length, no checksums): falls back to hashing
///   the raw body bytes. The same matrix therefore fingerprints
///   *differently* in v1 and v2 containers — on a fingerprint-keyed
///   cache that is a miss (a re-plan), never a false hit.
pub fn read_fingerprint<R: Read>(r: &mut R, limits: &LoadLimits) -> Result<Fingerprint> {
    let h = read_header(r)?;
    if h.version == 1 {
        let body = read_body_to_end_v1(r, limits)?;
        let (nrows, ncols, nnz) = body_shape(h.tag, &body, 0)?;
        Ok(Fingerprint { crc: crc32(&body), nrows, ncols, nnz })
    } else {
        let payload = read_payload(r, limits)?;
        let (nrows, ncols, nnz) = body_shape(h.tag, &payload, 4)?;
        Ok(Fingerprint { crc: crc32(&payload), nrows, ncols, nnz })
    }
}

/// Reads a v1 body to EOF in bounded chunks, enforcing
/// `limits.max_bytes` as the bytes actually arrive (v1 declares no
/// up-front length to check).
fn read_body_to_end_v1<R: Read>(r: &mut R, limits: &LoadLimits) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    loop {
        let n = r.read(&mut chunk).map_err(io_err)?;
        if n == 0 {
            return Ok(out);
        }
        limits.check_bytes("v1 container body", (out.len() + n) as u64)?;
        out.extend_from_slice(&chunk[..n]);
    }
}

/// Minimal shape scan over a container body: `nrows`/`ncols` from the
/// head, `nnz` from the element count of the tag's nnz-bearing array,
/// skipping earlier arrays without decoding their data. `sec_trailer`
/// is the per-array trailer size — 4 for v2 sections (trailing CRC-32),
/// 0 for v1 length-prefixed arrays.
fn body_shape(tag: u8, body: &[u8], sec_trailer: usize) -> Result<(u64, u64, u64)> {
    let u64_at = |pos: usize, what: &str| -> Result<u64> {
        body.get(pos..pos + 8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
            .ok_or_else(|| SparseError::Parse(format!("container truncated inside {what}")))
    };
    let nrows = u64_at(0, "nrows")?;
    let ncols = u64_at(8, "ncols")?;
    // Each array is `u64 count | count * elem_bytes | trailer`.
    let skip = |pos: usize, elem_bytes: u64, what: &str| -> Result<usize> {
        let count = u64_at(pos, what)?;
        let adv = count
            .checked_mul(elem_bytes)
            .and_then(|b| b.checked_add(8 + sec_trailer as u64))
            .filter(|&b| b <= (body.len() - pos) as u64)
            .ok_or_else(|| SparseError::Parse(format!("container truncated inside {what}")))?;
        Ok(pos + adv as usize)
    };
    let nnz = match tag {
        // nrows | ncols | row_ptr | col_ind(=nnz) | ...
        TAG_CSR | TAG_CSR_VI => u64_at(skip(16, 4, "row_ptr")?, "col_ind count")?,
        // nrows | ncols | col_ptr | row_ind(=nnz) | values
        TAG_CSC => u64_at(skip(16, 4, "col_ptr")?, "row_ind count")?,
        // nrows | ncols | ctl | values(=nnz)
        TAG_CSR_DU => u64_at(skip(16, 1, "ctl")?, "values count")?,
        other => {
            return Err(SparseError::Parse(format!("unknown container tag {other}")));
        }
    };
    Ok((nrows, ncols, nnz))
}

// ---------------------------------------------------------------------
// CSR
// ---------------------------------------------------------------------

fn csr_payload(m: &Csr<u32, f64>) -> Vec<u8> {
    let mut payload = Vec::new();
    put_u64(&mut payload, m.nrows() as u64);
    put_u64(&mut payload, m.ncols() as u64);
    put_u32_section(&mut payload, m.row_ptr());
    put_u32_section(&mut payload, m.col_ind());
    put_f64_section(&mut payload, m.values());
    payload
}

/// Serializes a CSR matrix (always the current container version).
pub fn write_csr<W: Write>(m: &Csr<u32, f64>, w: &mut W) -> Result<()> {
    write_frame(w, TAG_CSR, &csr_payload(m))
}

/// Deserializes a CSR matrix with default [`LoadLimits`] (revalidates all
/// invariants).
pub fn read_csr<R: Read>(r: &mut R) -> Result<Csr<u32, f64>> {
    read_csr_with(r, &LoadLimits::default())
}

/// Deserializes a CSR matrix under explicit [`LoadLimits`].
pub fn read_csr_with<R: Read>(r: &mut R, limits: &LoadLimits) -> Result<Csr<u32, f64>> {
    let h = read_header(r)?;
    check_tag(&h, TAG_CSR, "CSR")?;
    let (nrows, ncols, row_ptr, col_ind, values);
    if h.version == 1 {
        nrows = read_u64_v1(r)?;
        ncols = read_u64_v1(r)?;
        limits.check_dims(nrows, ncols)?;
        row_ptr = read_u32_vec_v1(r, "row_ptr", limits)?;
        col_ind = read_u32_vec_v1(r, "col_ind", limits)?;
        values = read_f64_vec_v1(r, "values", limits)?;
    } else {
        let payload = read_payload(r, limits)?;
        let mut p = Payload { buf: &payload, pos: 0 };
        nrows = p.u64("nrows")?;
        ncols = p.u64("ncols")?;
        limits.check_dims(nrows, ncols)?;
        row_ptr = p.u32_section("row_ptr", (limits.max_nrows as u64).saturating_add(1), limits)?;
        col_ind = p.u32_section("col_ind", limits.max_nnz as u64, limits)?;
        values = p.f64_section("values", limits.max_nnz as u64, limits)?;
    }
    let m = Csr::from_raw_parts(nrows as usize, ncols as usize, row_ptr, col_ind, values)?;
    // Final acceptance gate after the CRC pass: the checked constructor
    // establishes the invariants, validate() re-proves them on the
    // assembled object — so a future constructor shortcut cannot quietly
    // weaken the untrusted-input path.
    m.validate()?;
    Ok(m)
}

// ---------------------------------------------------------------------
// CSC
// ---------------------------------------------------------------------

/// Serializes a CSC matrix (CSC frames exist only in container v2).
pub fn write_csc<W: Write>(m: &Csc<u32, f64>, w: &mut W) -> Result<()> {
    let mut payload = Vec::new();
    put_u64(&mut payload, m.nrows() as u64);
    put_u64(&mut payload, m.ncols() as u64);
    put_u32_section(&mut payload, m.col_ptr());
    put_u32_section(&mut payload, m.row_ind());
    put_f64_section(&mut payload, m.values());
    write_frame(w, TAG_CSC, &payload)
}

/// Deserializes a CSC matrix with default [`LoadLimits`] (revalidates all
/// invariants).
pub fn read_csc<R: Read>(r: &mut R) -> Result<Csc<u32, f64>> {
    read_csc_with(r, &LoadLimits::default())
}

/// Deserializes a CSC matrix under explicit [`LoadLimits`].
pub fn read_csc_with<R: Read>(r: &mut R, limits: &LoadLimits) -> Result<Csc<u32, f64>> {
    let h = read_header(r)?;
    check_tag(&h, TAG_CSC, "CSC")?;
    if h.version == 1 {
        // The tag postdates v1, so such a header is an encoder bug.
        return Err(SparseError::Parse("CSC frames require container v2".into()));
    }
    let payload = read_payload(r, limits)?;
    let mut p = Payload { buf: &payload, pos: 0 };
    let nrows = p.u64("nrows")?;
    let ncols = p.u64("ncols")?;
    limits.check_dims(nrows, ncols)?;
    let col_ptr = p.u32_section("col_ptr", (limits.max_ncols as u64).saturating_add(1), limits)?;
    let row_ind = p.u32_section("row_ind", limits.max_nnz as u64, limits)?;
    let values = p.f64_section("values", limits.max_nnz as u64, limits)?;
    let m = Csc::from_raw_parts(nrows as usize, ncols as usize, col_ptr, row_ind, values)?;
    // Final acceptance gate after the CRC pass, mirroring read_csr_with:
    // the constructor establishes the invariants, validate() re-proves
    // them on the assembled object.
    m.validate()?;
    Ok(m)
}

// ---------------------------------------------------------------------
// CSR-DU
// ---------------------------------------------------------------------

/// Serializes a CSR-DU matrix (ctl stream + values).
pub fn write_csr_du<W: Write>(m: &CsrDu<f64>, w: &mut W) -> Result<()> {
    let mut payload = Vec::new();
    put_u64(&mut payload, m.nrows() as u64);
    put_u64(&mut payload, m.ncols() as u64);
    put_byte_section(&mut payload, m.ctl());
    put_f64_section(&mut payload, m.values());
    write_frame(w, TAG_CSR_DU, &payload)
}

/// Deserializes a CSR-DU matrix with default [`LoadLimits`]. The ctl
/// stream is *validated by re-decoding*: the reconstruction must produce
/// a well-formed CSR with matching nnz, so corrupt streams are rejected
/// rather than trusted.
pub fn read_csr_du<R: Read>(r: &mut R) -> Result<CsrDu<f64>> {
    read_csr_du_with(r, &LoadLimits::default())
}

/// Deserializes a CSR-DU matrix under explicit [`LoadLimits`].
pub fn read_csr_du_with<R: Read>(r: &mut R, limits: &LoadLimits) -> Result<CsrDu<f64>> {
    let h = read_header(r)?;
    check_tag(&h, TAG_CSR_DU, "CSR-DU")?;
    let (nrows, ncols, ctl, values);
    if h.version == 1 {
        nrows = read_u64_v1(r)?;
        ncols = read_u64_v1(r)?;
        limits.check_dims(nrows, ncols)?;
        ctl = read_bytes_v1(r, "ctl", limits)?;
        values = read_f64_vec_v1(r, "values", limits)?;
    } else {
        let payload = read_payload(r, limits)?;
        let mut p = Payload { buf: &payload, pos: 0 };
        nrows = p.u64("nrows")?;
        ncols = p.u64("ncols")?;
        limits.check_dims(nrows, ncols)?;
        ctl = p.byte_section("ctl", limits)?;
        values = p.f64_section("values", limits.max_nnz as u64, limits)?;
    }
    let m = CsrDu::from_parts_checked(nrows as usize, ncols as usize, ctl, values)?;
    m.validate()?; // final acceptance gate after the CRC pass
    Ok(m)
}

// ---------------------------------------------------------------------
// CSR-VI
// ---------------------------------------------------------------------

/// Serializes a CSR-VI matrix.
pub fn write_csr_vi<W: Write>(m: &CsrVi<u32, f64>, w: &mut W) -> Result<()> {
    let mut payload = Vec::new();
    put_u64(&mut payload, m.nrows() as u64);
    put_u64(&mut payload, m.ncols() as u64);
    put_u32_section(&mut payload, m.row_ptr());
    put_u32_section(&mut payload, m.col_ind());
    put_f64_section(&mut payload, m.vals_unique());
    put_u64(&mut payload, m.val_ind().width_bytes() as u64);
    match m.val_ind() {
        ValInd::U8(v) => put_byte_section(&mut payload, v),
        ValInd::U16(v) => put_u16_section(&mut payload, v),
        ValInd::U32(v) => put_u32_section(&mut payload, v),
    }
    write_frame(w, TAG_CSR_VI, &payload)
}

/// Deserializes a CSR-VI matrix with default [`LoadLimits`] (revalidates
/// structure and value-index bounds).
pub fn read_csr_vi<R: Read>(r: &mut R) -> Result<CsrVi<u32, f64>> {
    read_csr_vi_with(r, &LoadLimits::default())
}

/// Deserializes a CSR-VI matrix under explicit [`LoadLimits`].
pub fn read_csr_vi_with<R: Read>(r: &mut R, limits: &LoadLimits) -> Result<CsrVi<u32, f64>> {
    let h = read_header(r)?;
    check_tag(&h, TAG_CSR_VI, "CSR-VI")?;
    let (nrows, ncols, row_ptr, col_ind, vals_unique, val_ind);
    if h.version == 1 {
        nrows = read_u64_v1(r)?;
        ncols = read_u64_v1(r)?;
        limits.check_dims(nrows, ncols)?;
        row_ptr = read_u32_vec_v1(r, "row_ptr", limits)?;
        col_ind = read_u32_vec_v1(r, "col_ind", limits)?;
        vals_unique = read_f64_vec_v1(r, "vals_unique", limits)?;
        let width = read_u64_v1(r)?;
        val_ind = match width {
            1 => ValInd::U8(read_bytes_v1(r, "val_ind", limits)?),
            2 => {
                let len = read_u64_v1(r)?;
                limits.check_count("val_ind", len)?;
                let mut v = Vec::with_capacity((len as usize).min(PREALLOC_CAP));
                let mut buf = [0u8; 2];
                for _ in 0..len {
                    r.read_exact(&mut buf).map_err(io_err)?;
                    v.push(u16::from_le_bytes(buf));
                }
                ValInd::U16(v)
            }
            4 => ValInd::U32(read_u32_vec_v1(r, "val_ind", limits)?),
            other => {
                return Err(SparseError::Parse(format!("invalid val_ind width {other}")));
            }
        };
    } else {
        let payload = read_payload(r, limits)?;
        let mut p = Payload { buf: &payload, pos: 0 };
        nrows = p.u64("nrows")?;
        ncols = p.u64("ncols")?;
        limits.check_dims(nrows, ncols)?;
        row_ptr = p.u32_section("row_ptr", (limits.max_nrows as u64).saturating_add(1), limits)?;
        col_ind = p.u32_section("col_ind", limits.max_nnz as u64, limits)?;
        vals_unique = p.f64_section("vals_unique", limits.max_nnz as u64, limits)?;
        let width = p.u64("val_ind width")?;
        let max = limits.max_nnz as u64;
        val_ind = match width {
            1 => {
                let (_, data) = p.section("val_ind", 1, max, limits)?;
                ValInd::U8(data.to_vec())
            }
            2 => ValInd::U16(p.u16_section("val_ind", max, limits)?),
            4 => ValInd::U32(p.u32_section("val_ind", max, limits)?),
            other => {
                return Err(SparseError::Parse(format!("invalid val_ind width {other}")));
            }
        };
    }
    let m = CsrVi::from_parts_checked(
        nrows as usize,
        ncols as usize,
        row_ptr,
        col_ind,
        vals_unique,
        val_ind,
    )?;
    m.validate()?; // final acceptance gate after the CRC pass
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr_du::DuOptions;
    use crate::examples::paper_matrix;
    use crate::SpMv;
    use std::io::Cursor;

    // -----------------------------------------------------------------
    // v1 fixture writers: reproduce the exact layout the version-1 code
    // emitted, so old containers keep loading after the v2 bump.
    // -----------------------------------------------------------------

    fn v1_header(tag: u8) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&1u16.to_le_bytes());
        out.push(tag);
        out
    }

    fn v1_u32s(out: &mut Vec<u8>, data: &[u32]) {
        out.extend_from_slice(&(data.len() as u64).to_le_bytes());
        for &v in data {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn v1_f64s(out: &mut Vec<u8>, data: &[f64]) {
        out.extend_from_slice(&(data.len() as u64).to_le_bytes());
        for &v in data {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn v1_csr_fixture(m: &Csr<u32, f64>) -> Vec<u8> {
        let mut out = v1_header(1);
        out.extend_from_slice(&(m.nrows() as u64).to_le_bytes());
        out.extend_from_slice(&(m.ncols() as u64).to_le_bytes());
        v1_u32s(&mut out, m.row_ptr());
        v1_u32s(&mut out, m.col_ind());
        v1_f64s(&mut out, m.values());
        out
    }

    fn v1_csr_du_fixture(m: &CsrDu<f64>) -> Vec<u8> {
        let mut out = v1_header(2);
        out.extend_from_slice(&(m.nrows() as u64).to_le_bytes());
        out.extend_from_slice(&(m.ncols() as u64).to_le_bytes());
        out.extend_from_slice(&(m.ctl().len() as u64).to_le_bytes());
        out.extend_from_slice(m.ctl());
        v1_f64s(&mut out, m.values());
        out
    }

    fn v1_csr_vi_fixture(m: &CsrVi<u32, f64>) -> Vec<u8> {
        let mut out = v1_header(3);
        out.extend_from_slice(&(m.nrows() as u64).to_le_bytes());
        out.extend_from_slice(&(m.ncols() as u64).to_le_bytes());
        v1_u32s(&mut out, m.row_ptr());
        v1_u32s(&mut out, m.col_ind());
        v1_f64s(&mut out, m.vals_unique());
        out.extend_from_slice(&(m.val_ind().width_bytes() as u64).to_le_bytes());
        match m.val_ind() {
            ValInd::U8(v) => {
                out.extend_from_slice(&(v.len() as u64).to_le_bytes());
                out.extend_from_slice(v);
            }
            ValInd::U16(v) => {
                out.extend_from_slice(&(v.len() as u64).to_le_bytes());
                for &x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            ValInd::U32(v) => v1_u32s(&mut out, v),
        }
        out
    }

    #[test]
    fn csr_roundtrip() {
        let csr = paper_matrix().to_csr();
        let mut buf = Vec::new();
        write_csr(&csr, &mut buf).unwrap();
        let back = read_csr(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(back, csr);
    }

    #[test]
    fn fingerprint_matches_stored_v2_payload_crc() {
        let csr = paper_matrix().to_csr();
        let fp = fingerprint_csr(&csr);
        assert!(fp.matches_shape(csr.nrows(), csr.ncols(), csr.nnz()));
        let mut buf = Vec::new();
        write_csr(&csr, &mut buf).unwrap();
        // The stored whole-payload CRC sits right after the 7-byte header
        // and the 8-byte declared length: the in-memory fingerprint must
        // equal it byte for byte (no re-hash needed for v2 files).
        let stored = u32::from_le_bytes(buf[15..19].try_into().unwrap());
        assert_eq!(fp.crc, stored);
        // And reading the fingerprint back from the container agrees.
        let read = read_fingerprint(&mut Cursor::new(&buf), &LoadLimits::default()).unwrap();
        assert_eq!(read, fp);
    }

    #[test]
    fn fingerprint_v1_falls_back_to_hashing_the_payload() {
        // A v1 container carries no payload CRC: read_fingerprint must
        // fall back to hashing the raw body instead of failing (or worse,
        // trusting garbage bytes as a checksum).
        let csr: Csr<u32, f64> = paper_matrix().to_csr();
        let v1 = v1_csr_fixture(&csr);
        let fp1 = read_fingerprint(&mut Cursor::new(&v1), &LoadLimits::default()).unwrap();
        assert!(fp1.matches_shape(csr.nrows(), csr.ncols(), csr.nnz()));
        // The hash is over the body after the 7-byte header.
        assert_eq!(fp1.crc, crc32(&v1[7..]));
        // v1 bodies hash differently than v2 payloads (section trailers
        // differ), so the same matrix gets a *different* key per container
        // version — on a fingerprint-keyed cache that is a miss (safe),
        // never a false hit.
        assert_ne!(fp1.crc, fingerprint_csr(&csr).crc);
        // Shape extraction also works for the other v1 tags.
        let du = CsrDu::from_csr(&csr, &DuOptions::default());
        let fdu =
            read_fingerprint(&mut Cursor::new(v1_csr_du_fixture(&du)), &LoadLimits::default())
                .unwrap();
        assert!(fdu.matches_shape(du.nrows(), du.ncols(), du.nnz()));
        let vi = CsrVi::from_csr(&csr);
        let fvi =
            read_fingerprint(&mut Cursor::new(v1_csr_vi_fixture(&vi)), &LoadLimits::default())
                .unwrap();
        assert!(fvi.matches_shape(vi.nrows(), vi.ncols(), vi.nnz()));
    }

    #[test]
    fn fingerprint_rejects_corrupt_v2_payload() {
        let csr = paper_matrix().to_csr();
        let mut buf = Vec::new();
        write_csr(&csr, &mut buf).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xff;
        assert!(matches!(
            read_fingerprint(&mut Cursor::new(&buf), &LoadLimits::default()),
            Err(SparseError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn fingerprint_distinguishes_different_matrices() {
        let a: Csr<u32, f64> = paper_matrix().to_csr();
        let mut coo = crate::Coo::new(6, 6);
        for i in 0..6 {
            coo.push(i, i, 2.0).unwrap();
        }
        let b: Csr<u32, f64> = coo.to_csr();
        assert_ne!(fingerprint_csr(&a), fingerprint_csr(&b));
    }

    #[test]
    fn csr_du_roundtrip() {
        let csr = paper_matrix().to_csr();
        let du = CsrDu::from_csr(&csr, &DuOptions::default());
        let mut buf = Vec::new();
        write_csr_du(&du, &mut buf).unwrap();
        let back = read_csr_du(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(back, du);
        // And it still multiplies identically.
        let x = vec![1.0; 6];
        let mut y0 = vec![0.0; 6];
        let mut y1 = vec![0.0; 6];
        du.spmv(&x, &mut y0);
        back.spmv(&x, &mut y1);
        assert_eq!(y0, y1);
    }

    #[test]
    fn csr_vi_roundtrip_all_widths() {
        // u8 width (paper matrix, 9 unique values).
        let csr = paper_matrix().to_csr();
        let vi = CsrVi::from_csr(&csr);
        let mut buf = Vec::new();
        write_csr_vi(&vi, &mut buf).unwrap();
        assert_eq!(read_csr_vi(&mut Cursor::new(&buf)).unwrap(), vi);

        // u16 width (300 unique values).
        let coo =
            crate::Coo::from_triplets(1, 300, (0..300).map(|c| (0usize, c, c as f64))).unwrap();
        let vi = CsrVi::from_csr(&coo.to_csr());
        assert_eq!(vi.val_ind().width_bytes(), 2);
        let mut buf = Vec::new();
        write_csr_vi(&vi, &mut buf).unwrap();
        assert_eq!(read_csr_vi(&mut Cursor::new(&buf)).unwrap(), vi);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOPE\x01\x00\x01".to_vec();
        assert!(read_csr(&mut Cursor::new(&buf)).is_err());
    }

    #[test]
    fn wrong_version_rejected() {
        let mut buf = Vec::new();
        write_csr(&paper_matrix().to_csr(), &mut buf).unwrap();
        buf[4] = 99; // version byte
        let err = read_csr(&mut Cursor::new(&buf)).unwrap_err();
        assert!(matches!(
            err,
            SparseError::UnsupportedVersion { found: 99, max_supported: VERSION }
        ));
    }

    #[test]
    fn version_zero_rejected() {
        let mut buf = Vec::new();
        write_csr(&paper_matrix().to_csr(), &mut buf).unwrap();
        buf[4] = 0;
        let err = read_csr(&mut Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, SparseError::UnsupportedVersion { found: 0, .. }));
    }

    #[test]
    fn wrong_tag_rejected() {
        let mut buf = Vec::new();
        write_csr(&paper_matrix().to_csr(), &mut buf).unwrap();
        assert!(read_csr_du(&mut Cursor::new(&buf)).is_err());
    }

    #[test]
    fn truncation_rejected_at_every_byte_csr() {
        let mut buf = Vec::new();
        write_csr(&paper_matrix().to_csr(), &mut buf).unwrap();
        for cut in 0..buf.len() {
            assert!(read_csr(&mut Cursor::new(&buf[..cut])).is_err(), "cut at {cut}");
        }
        assert!(read_csr(&mut Cursor::new(&buf)).is_ok());
    }

    #[test]
    fn truncation_rejected_at_every_byte_csr_du() {
        let csr = paper_matrix().to_csr();
        let du = CsrDu::from_csr(&csr, &DuOptions::default());
        let mut buf = Vec::new();
        write_csr_du(&du, &mut buf).unwrap();
        for cut in 0..buf.len() {
            assert!(read_csr_du(&mut Cursor::new(&buf[..cut])).is_err(), "cut at {cut}");
        }
        assert!(read_csr_du(&mut Cursor::new(&buf)).is_ok());
    }

    #[test]
    fn truncation_rejected_at_every_byte_csr_vi() {
        let vi = CsrVi::from_csr(&paper_matrix().to_csr());
        let mut buf = Vec::new();
        write_csr_vi(&vi, &mut buf).unwrap();
        for cut in 0..buf.len() {
            assert!(read_csr_vi(&mut Cursor::new(&buf[..cut])).is_err(), "cut at {cut}");
        }
        assert!(read_csr_vi(&mut Cursor::new(&buf)).is_ok());
    }

    #[test]
    fn truncation_rejected_at_every_byte_v1_fixtures() {
        let csr = paper_matrix().to_csr();
        let du = CsrDu::from_csr(&csr, &DuOptions::default());
        let vi = CsrVi::from_csr(&csr);
        type ErrCheck = fn(&[u8]) -> bool;
        let fixtures: [(Vec<u8>, ErrCheck); 3] = [
            (v1_csr_fixture(&csr), |b| read_csr(&mut Cursor::new(b)).is_err()),
            (v1_csr_du_fixture(&du), |b| read_csr_du(&mut Cursor::new(b)).is_err()),
            (v1_csr_vi_fixture(&vi), |b| read_csr_vi(&mut Cursor::new(b)).is_err()),
        ];
        for (buf, errs) in &fixtures {
            for cut in 0..buf.len() {
                assert!(errs(&buf[..cut]), "v1 cut at {cut}");
            }
        }
    }

    #[test]
    fn v1_fixtures_still_load() {
        // Regression guard for the v2 bump: byte-exact version-1 containers
        // (no declared length, no checksums) must keep loading.
        let csr = paper_matrix().to_csr();
        let du = CsrDu::from_csr(&csr, &DuOptions::default());
        let vi = CsrVi::from_csr(&csr);
        assert_eq!(read_csr(&mut Cursor::new(v1_csr_fixture(&csr))).unwrap(), csr);
        assert_eq!(read_csr_du(&mut Cursor::new(v1_csr_du_fixture(&du))).unwrap(), du);
        assert_eq!(read_csr_vi(&mut Cursor::new(v1_csr_vi_fixture(&vi))).unwrap(), vi);
    }

    #[test]
    fn bitflip_anywhere_in_v2_payload_is_detected() {
        // Every flipped bit in the body must surface as ChecksumMismatch —
        // including value bytes, which no structural validation can catch.
        let mut buf = Vec::new();
        write_csr(&paper_matrix().to_csr(), &mut buf).unwrap();
        let body_start = 7 + 12; // header + (payload len, payload crc)
        for byte in body_start..buf.len() {
            let mut corrupt = buf.clone();
            corrupt[byte] ^= 0x10;
            let err = read_csr(&mut Cursor::new(&corrupt)).unwrap_err();
            assert!(
                matches!(err, SparseError::ChecksumMismatch { .. }),
                "byte {byte}: unexpected error {err}"
            );
        }
    }

    #[test]
    fn section_checksum_names_damaged_array() {
        // Zero out the whole-payload CRC so the per-section check is the
        // one that fires; it must name the damaged section.
        let csr = paper_matrix().to_csr();
        let mut buf = Vec::new();
        write_csr(&csr, &mut buf).unwrap();
        // Corrupt the first byte of the values section's data: payload is
        // nrows(8) ncols(8) row_ptr(8 + 7*4 + 4) col_ind(8 + 16*4 + 4) values...
        let values_data = 7 + 12 + 8 + 8 + (8 + 7 * 4 + 4) + (8 + 16 * 4 + 4) + 8;
        buf[values_data] ^= 0x01;
        // Re-stamp the whole-payload CRC to match, isolating the section CRC.
        let payload_crc = crc32(&buf[19..]);
        buf[15..19].copy_from_slice(&payload_crc.to_le_bytes());
        let err = read_csr(&mut Cursor::new(&buf)).unwrap_err();
        match err {
            SparseError::ChecksumMismatch { section, .. } => assert_eq!(section, "values"),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn length_inflated_header_trips_resource_limit() {
        // A tiny file declaring a u64::MAX payload must be refused before
        // any allocation happens.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.push(1); // CSR tag
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let err = read_csr(&mut Cursor::new(&buf)).unwrap_err();
        assert!(
            matches!(err, SparseError::ResourceLimit { ref what, .. } if what == "payload bytes"),
            "unexpected error {err}"
        );
    }

    #[test]
    fn length_inflated_v1_array_trips_resource_limit() {
        // v1 has no payload framing; the per-array length check must fire.
        let csr = paper_matrix().to_csr();
        let mut buf = v1_csr_fixture(&csr);
        // row_ptr length field sits right after header + nrows + ncols.
        let len_at = 7 + 8 + 8;
        buf[len_at..len_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = read_csr(&mut Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, SparseError::ResourceLimit { .. }), "unexpected error {err}");
    }

    #[test]
    fn dimension_limits_enforced() {
        let strict = LoadLimits { max_nrows: 4, ..LoadLimits::unlimited() };
        let mut buf = Vec::new();
        write_csr(&paper_matrix().to_csr(), &mut buf).unwrap(); // 6x6
        let err = read_csr_with(&mut Cursor::new(&buf), &strict).unwrap_err();
        assert!(matches!(err, SparseError::ResourceLimit { ref what, .. } if what == "nrows"));
        // Unlimited accepts it.
        assert!(read_csr_with(&mut Cursor::new(&buf), &LoadLimits::unlimited()).is_ok());
    }

    #[test]
    fn csc_roundtrip_preserves_matrix() {
        let csc = Csc::from_csr(&paper_matrix().to_csr()).unwrap();
        let mut buf = Vec::new();
        write_csc(&csc, &mut buf).unwrap();
        let back = read_csc(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(back, csc);
    }

    #[test]
    fn csc_bitflip_anywhere_in_payload_is_detected() {
        let csc = Csc::from_csr(&paper_matrix().to_csr()).unwrap();
        let mut buf = Vec::new();
        write_csc(&csc, &mut buf).unwrap();
        let body_start = 7 + 12; // header + (payload len, payload crc)
        for byte in body_start..buf.len() {
            let mut corrupt = buf.clone();
            corrupt[byte] ^= 0x10;
            let err = read_csc(&mut Cursor::new(&corrupt)).unwrap_err();
            assert!(
                matches!(err, SparseError::ChecksumMismatch { .. }),
                "byte {byte}: unexpected error {err}"
            );
        }
    }

    #[test]
    fn structurally_bogus_csc_rejected_despite_valid_checksums() {
        // A hostile writer can stamp correct CRCs onto a CSC whose
        // row_ind points outside the matrix; the validate-after-CRC gate
        // must still reject it (mirror of the CSR case).
        let mut payload = Vec::new();
        put_u64(&mut payload, 2); // nrows
        put_u64(&mut payload, 2); // ncols
        put_u32_section(&mut payload, &[0, 1, 2]); // col_ptr
        put_u32_section(&mut payload, &[0, 7]); // row 7 in a 2-row matrix
        put_f64_section(&mut payload, &[1.0, 2.0]);
        let mut buf = Vec::new();
        write_frame(&mut buf, TAG_CSC, &payload).unwrap();
        let err = read_csc(&mut Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, SparseError::IndexOutOfBounds { .. }), "unexpected error {err}");
    }

    #[test]
    fn csc_frame_with_v1_header_is_refused() {
        let mut buf = v1_header(TAG_CSC);
        buf.extend_from_slice(&[0u8; 16]);
        let err = read_csc(&mut Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, SparseError::Parse(_)), "unexpected error {err}");
    }

    #[test]
    fn corrupt_du_ctl_rejected_even_with_fixed_checksums() {
        // Structural validation still runs underneath the checksums: a
        // well-checksummed container holding a garbage ctl stream (e.g.
        // written by a buggy encoder) is rejected by validate_ctl.
        let nrows = 2u64;
        let ncols = 2u64;
        let mut payload = Vec::new();
        put_u64(&mut payload, nrows);
        put_u64(&mut payload, ncols);
        put_byte_section(&mut payload, &[0x80, 0x00]); // zero-length unit
        put_f64_section(&mut payload, &[]);
        let mut buf = Vec::new();
        write_frame(&mut buf, TAG_CSR_DU, &payload).unwrap();
        let err = read_csr_du(&mut Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, SparseError::InvalidFormat(_)), "unexpected error {err}");
    }

    #[test]
    fn structurally_bogus_csr_rejected_despite_valid_checksums() {
        // Checksums only prove the bytes arrived as written; a hostile or
        // buggy writer can stamp correct CRCs onto a CSR whose col_ind
        // points outside the matrix. validate() must still reject it.
        let mut payload = Vec::new();
        put_u64(&mut payload, 2); // nrows
        put_u64(&mut payload, 2); // ncols
        put_u32_section(&mut payload, &[0, 1, 2]); // row_ptr
        put_u32_section(&mut payload, &[0, 7]); // col 7 >= ncols 2
        put_f64_section(&mut payload, &[1.0, 2.0]);
        let mut buf = Vec::new();
        write_frame(&mut buf, TAG_CSR, &payload).unwrap();
        let err = read_csr(&mut Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, SparseError::IndexOutOfBounds { .. }), "unexpected error {err}");
    }

    #[test]
    fn out_of_table_value_index_rejected_despite_valid_checksums() {
        // A CSR-VI container with a val_ind entry past the unique table:
        // structurally consistent CSR arrays, valid CRCs, bogus indirection.
        let mut payload = Vec::new();
        put_u64(&mut payload, 2); // nrows
        put_u64(&mut payload, 2); // ncols
        put_u32_section(&mut payload, &[0, 1, 2]); // row_ptr
        put_u32_section(&mut payload, &[0, 1]); // col_ind
        put_f64_section(&mut payload, &[4.5]); // one unique value
        put_u64(&mut payload, 1); // val_ind width = u8
        put_byte_section(&mut payload, &[0, 3]); // index 3 >= unique count 1
        let mut buf = Vec::new();
        write_frame(&mut buf, TAG_CSR_VI, &payload).unwrap();
        let err = read_csr_vi(&mut Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, SparseError::InvalidFormat(_)), "unexpected error {err}");
    }
}
