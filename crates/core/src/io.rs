//! Binary serialization of the compressed formats.
//!
//! Compression is only worth paying for once; this module lets a
//! pre-encoded matrix be persisted and memory-loaded later (e.g. a solver
//! service encoding at ingest time). The container is a simple
//! little-endian layout with a magic/version header and per-format tags —
//! deliberately dependency-free and stable.
//!
//! Concrete types only (`u32` indices, `f64` values — the paper's
//! baseline widths); other widths can be converted on load.
//!
//! Layout: `"SPMV"` magic, `u16` version, `u8` format tag, then
//! format-specific fields, all integers little-endian.

use crate::csr::Csr;
use crate::csr_du::CsrDu;
use crate::csr_vi::{CsrVi, ValInd};
use crate::error::SparseError;
use std::io::{Read, Write};

/// Container magic bytes.
pub const MAGIC: &[u8; 4] = b"SPMV";
/// Current container version.
pub const VERSION: u16 = 1;

const TAG_CSR: u8 = 1;
const TAG_CSR_DU: u8 = 2;
const TAG_CSR_VI: u8 = 3;

type Result<T> = std::result::Result<T, SparseError>;

fn io_err(e: std::io::Error) -> SparseError {
    SparseError::Parse(format!("io error: {e}"))
}

// ---------------------------------------------------------------------
// primitive writers/readers
// ---------------------------------------------------------------------

fn write_u64<W: Write>(w: &mut W, v: u64) -> Result<()> {
    w.write_all(&v.to_le_bytes()).map_err(io_err)
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf).map_err(io_err)?;
    Ok(u64::from_le_bytes(buf))
}

fn write_u32_slice<W: Write>(w: &mut W, data: &[u32]) -> Result<()> {
    write_u64(w, data.len() as u64)?;
    for &v in data {
        w.write_all(&v.to_le_bytes()).map_err(io_err)?;
    }
    Ok(())
}

fn read_u32_vec<R: Read>(r: &mut R, cap_hint: u64) -> Result<Vec<u32>> {
    let len = read_u64(r)?;
    if len > cap_hint {
        return Err(SparseError::Parse(format!("array length {len} exceeds sanity bound")));
    }
    // Never pre-allocate from an untrusted length: a corrupt header could
    // declare terabytes. Grow as bytes actually arrive (read_exact fails
    // fast on truncated input).
    let mut out = Vec::with_capacity((len as usize).min(PREALLOC_CAP));
    let mut buf = [0u8; 4];
    for _ in 0..len {
        r.read_exact(&mut buf).map_err(io_err)?;
        out.push(u32::from_le_bytes(buf));
    }
    Ok(out)
}

fn write_f64_slice<W: Write>(w: &mut W, data: &[f64]) -> Result<()> {
    write_u64(w, data.len() as u64)?;
    for &v in data {
        w.write_all(&v.to_le_bytes()).map_err(io_err)?;
    }
    Ok(())
}

fn read_f64_vec<R: Read>(r: &mut R, cap_hint: u64) -> Result<Vec<f64>> {
    let len = read_u64(r)?;
    if len > cap_hint {
        return Err(SparseError::Parse(format!("array length {len} exceeds sanity bound")));
    }
    let mut out = Vec::with_capacity((len as usize).min(PREALLOC_CAP));
    let mut buf = [0u8; 8];
    for _ in 0..len {
        r.read_exact(&mut buf).map_err(io_err)?;
        out.push(f64::from_le_bytes(buf));
    }
    Ok(out)
}

fn write_bytes<W: Write>(w: &mut W, data: &[u8]) -> Result<()> {
    write_u64(w, data.len() as u64)?;
    w.write_all(data).map_err(io_err)
}

fn read_bytes<R: Read>(r: &mut R, cap_hint: u64) -> Result<Vec<u8>> {
    let len = read_u64(r)?;
    if len > cap_hint {
        return Err(SparseError::Parse(format!("byte array {len} exceeds sanity bound")));
    }
    // Chunked read: no untrusted up-front allocation.
    let mut out = Vec::with_capacity((len as usize).min(PREALLOC_CAP));
    let mut remaining = len as usize;
    let mut chunk = [0u8; 64 * 1024];
    while remaining > 0 {
        let take = remaining.min(chunk.len());
        r.read_exact(&mut chunk[..take]).map_err(io_err)?;
        out.extend_from_slice(&chunk[..take]);
        remaining -= take;
    }
    Ok(out)
}

fn write_header<W: Write>(w: &mut W, tag: u8) -> Result<()> {
    w.write_all(MAGIC).map_err(io_err)?;
    w.write_all(&VERSION.to_le_bytes()).map_err(io_err)?;
    w.write_all(&[tag]).map_err(io_err)
}

fn read_header<R: Read>(r: &mut R) -> Result<u8> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(io_err)?;
    if &magic != MAGIC {
        return Err(SparseError::Parse("bad magic: not an SPMV container".into()));
    }
    let mut ver = [0u8; 2];
    r.read_exact(&mut ver).map_err(io_err)?;
    let version = u16::from_le_bytes(ver);
    if version != VERSION {
        return Err(SparseError::Parse(format!(
            "unsupported container version {version} (expected {VERSION})"
        )));
    }
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag).map_err(io_err)?;
    Ok(tag[0])
}

/// Generous sanity bound on element counts (guards against absurd
/// corrupt headers outright; real protection is chunked allocation).
const SANE: u64 = 1 << 40;

/// Largest up-front allocation taken on the word of an untrusted header.
const PREALLOC_CAP: usize = 1 << 16;

// ---------------------------------------------------------------------
// CSR
// ---------------------------------------------------------------------

/// Serializes a CSR matrix.
pub fn write_csr<W: Write>(m: &Csr<u32, f64>, w: &mut W) -> Result<()> {
    write_header(w, TAG_CSR)?;
    write_u64(w, m.nrows() as u64)?;
    write_u64(w, m.ncols() as u64)?;
    write_u32_slice(w, m.row_ptr())?;
    write_u32_slice(w, m.col_ind())?;
    write_f64_slice(w, m.values())
}

/// Deserializes a CSR matrix (revalidates all invariants).
pub fn read_csr<R: Read>(r: &mut R) -> Result<Csr<u32, f64>> {
    let tag = read_header(r)?;
    if tag != TAG_CSR {
        return Err(SparseError::Parse(format!("expected CSR container, found tag {tag}")));
    }
    let nrows = read_u64(r)? as usize;
    let ncols = read_u64(r)? as usize;
    let row_ptr = read_u32_vec(r, SANE)?;
    let col_ind = read_u32_vec(r, SANE)?;
    let values = read_f64_vec(r, SANE)?;
    Csr::from_raw_parts(nrows, ncols, row_ptr, col_ind, values)
}

// ---------------------------------------------------------------------
// CSR-DU
// ---------------------------------------------------------------------

/// Serializes a CSR-DU matrix (ctl stream + values).
pub fn write_csr_du<W: Write>(m: &CsrDu<f64>, w: &mut W) -> Result<()> {
    write_header(w, TAG_CSR_DU)?;
    write_u64(w, m.nrows() as u64)?;
    write_u64(w, m.ncols() as u64)?;
    write_bytes(w, m.ctl())?;
    write_f64_slice(w, m.values())
}

/// Deserializes a CSR-DU matrix. The ctl stream is *validated by
/// re-decoding*: the reconstruction must produce a well-formed CSR with
/// matching nnz, so corrupt streams are rejected rather than trusted.
pub fn read_csr_du<R: Read>(r: &mut R) -> Result<CsrDu<f64>> {
    let tag = read_header(r)?;
    if tag != TAG_CSR_DU {
        return Err(SparseError::Parse(format!("expected CSR-DU container, found tag {tag}")));
    }
    let nrows = read_u64(r)? as usize;
    let ncols = read_u64(r)? as usize;
    let ctl = read_bytes(r, SANE)?;
    let values = read_f64_vec(r, SANE)?;
    CsrDu::from_parts_checked(nrows, ncols, ctl, values)
}

// ---------------------------------------------------------------------
// CSR-VI
// ---------------------------------------------------------------------

/// Serializes a CSR-VI matrix.
pub fn write_csr_vi<W: Write>(m: &CsrVi<u32, f64>, w: &mut W) -> Result<()> {
    write_header(w, TAG_CSR_VI)?;
    write_u64(w, m.nrows() as u64)?;
    write_u64(w, m.ncols() as u64)?;
    write_u32_slice(w, m.row_ptr())?;
    write_u32_slice(w, m.col_ind())?;
    write_f64_slice(w, m.vals_unique())?;
    match m.val_ind() {
        ValInd::U8(v) => {
            write_u64(w, 1)?;
            write_bytes(w, v)
        }
        ValInd::U16(v) => {
            write_u64(w, 2)?;
            write_u64(w, v.len() as u64)?;
            for &x in v {
                w.write_all(&x.to_le_bytes()).map_err(io_err)?;
            }
            Ok(())
        }
        ValInd::U32(v) => {
            write_u64(w, 4)?;
            write_u32_slice(w, v)
        }
    }
}

/// Deserializes a CSR-VI matrix (revalidates structure and value-index
/// bounds).
pub fn read_csr_vi<R: Read>(r: &mut R) -> Result<CsrVi<u32, f64>> {
    let tag = read_header(r)?;
    if tag != TAG_CSR_VI {
        return Err(SparseError::Parse(format!("expected CSR-VI container, found tag {tag}")));
    }
    let nrows = read_u64(r)? as usize;
    let ncols = read_u64(r)? as usize;
    let row_ptr = read_u32_vec(r, SANE)?;
    let col_ind = read_u32_vec(r, SANE)?;
    let vals_unique = read_f64_vec(r, SANE)?;
    let width = read_u64(r)?;
    let val_ind = match width {
        1 => ValInd::U8(read_bytes(r, SANE)?),
        2 => {
            let len = read_u64(r)?;
            if len > SANE {
                return Err(SparseError::Parse("val_ind length exceeds sanity bound".into()));
            }
            let mut v = Vec::with_capacity(len as usize);
            let mut buf = [0u8; 2];
            for _ in 0..len {
                r.read_exact(&mut buf).map_err(io_err)?;
                v.push(u16::from_le_bytes(buf));
            }
            ValInd::U16(v)
        }
        4 => ValInd::U32(read_u32_vec(r, SANE)?),
        other => {
            return Err(SparseError::Parse(format!("invalid val_ind width {other}")));
        }
    };
    CsrVi::from_parts_checked(nrows, ncols, row_ptr, col_ind, vals_unique, val_ind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr_du::DuOptions;
    use crate::examples::paper_matrix;
    use crate::SpMv;
    use std::io::Cursor;

    #[test]
    fn csr_roundtrip() {
        let csr = paper_matrix().to_csr();
        let mut buf = Vec::new();
        write_csr(&csr, &mut buf).unwrap();
        let back = read_csr(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(back, csr);
    }

    #[test]
    fn csr_du_roundtrip() {
        let csr = paper_matrix().to_csr();
        let du = CsrDu::from_csr(&csr, &DuOptions::default());
        let mut buf = Vec::new();
        write_csr_du(&du, &mut buf).unwrap();
        let back = read_csr_du(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(back, du);
        // And it still multiplies identically.
        let x = vec![1.0; 6];
        let mut y0 = vec![0.0; 6];
        let mut y1 = vec![0.0; 6];
        du.spmv(&x, &mut y0);
        back.spmv(&x, &mut y1);
        assert_eq!(y0, y1);
    }

    #[test]
    fn csr_vi_roundtrip_all_widths() {
        // u8 width (paper matrix, 9 unique values).
        let csr = paper_matrix().to_csr();
        let vi = CsrVi::from_csr(&csr);
        let mut buf = Vec::new();
        write_csr_vi(&vi, &mut buf).unwrap();
        assert_eq!(read_csr_vi(&mut Cursor::new(&buf)).unwrap(), vi);

        // u16 width (300 unique values).
        let coo =
            crate::Coo::from_triplets(1, 300, (0..300).map(|c| (0usize, c, c as f64))).unwrap();
        let vi = CsrVi::from_csr(&coo.to_csr());
        assert_eq!(vi.val_ind().width_bytes(), 2);
        let mut buf = Vec::new();
        write_csr_vi(&vi, &mut buf).unwrap();
        assert_eq!(read_csr_vi(&mut Cursor::new(&buf)).unwrap(), vi);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOPE\x01\x00\x01".to_vec();
        assert!(read_csr(&mut Cursor::new(&buf)).is_err());
    }

    #[test]
    fn wrong_version_rejected() {
        let mut buf = Vec::new();
        write_csr(&paper_matrix().to_csr(), &mut buf).unwrap();
        buf[4] = 99; // version byte
        let err = read_csr(&mut Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn wrong_tag_rejected() {
        let mut buf = Vec::new();
        write_csr(&paper_matrix().to_csr(), &mut buf).unwrap();
        assert!(read_csr_du(&mut Cursor::new(&buf)).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let mut buf = Vec::new();
        write_csr(&paper_matrix().to_csr(), &mut buf).unwrap();
        for cut in [3, 7, 20, buf.len() - 1] {
            assert!(read_csr(&mut Cursor::new(&buf[..cut])).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_csr_structure_rejected() {
        let mut buf = Vec::new();
        write_csr(&paper_matrix().to_csr(), &mut buf).unwrap();
        // Flip a row_ptr byte to break monotonicity: header(7) + nrows(8)
        // + ncols(8) + row_ptr len(8) + first entry...
        buf[7 + 8 + 8 + 8 + 2] = 0xff;
        assert!(read_csr(&mut Cursor::new(&buf)).is_err());
    }

    #[test]
    fn corrupt_du_ctl_rejected() {
        let csr = paper_matrix().to_csr();
        let du = CsrDu::from_csr(&csr, &DuOptions::default());
        let mut buf = Vec::new();
        write_csr_du(&du, &mut buf).unwrap();
        // Corrupt a ctl byte (first unit's usize -> 0 is invalid).
        let ctl_start = 7 + 8 + 8 + 8;
        buf[ctl_start + 1] = 0;
        assert!(read_csr_du(&mut Cursor::new(&buf)).is_err());
    }
}
