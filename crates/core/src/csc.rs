//! Compressed Sparse Column (CSC) — CSR's column-major dual (§II-B).
//!
//! Stored as `col_ptr`, `row_ind`, `values`. The SpMV kernel scatters into
//! `y` along columns; it reads `x` sequentially but writes `y` randomly —
//! the access-pattern mirror of CSR. Column partitioning (§II-C) is the
//! natural parallelization: each thread owns a column block and a private
//! `y` copy that is reduced at the end.

use crate::coo::Coo;
use crate::csr::Csr;
use crate::error::{Result, SparseError};
use crate::index::SpIndex;
use crate::scalar::Scalar;
use crate::spmv::{FormatKind, SpMv};

/// A sparse matrix in Compressed Sparse Column format.
#[derive(Debug, Clone, PartialEq)]
pub struct Csc<I: SpIndex = u32, V: Scalar = f64> {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<I>,
    row_ind: Vec<I>,
    values: Vec<V>,
}

impl<I: SpIndex, V: Scalar> Csc<I, V> {
    /// Builds CSC from raw arrays, validating all invariants (mirror of
    /// CSR's).
    #[allow(clippy::needless_range_loop)] // explicit j-indexing mirrors the kernel
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        col_ptr: Vec<I>,
        row_ind: Vec<I>,
        values: Vec<V>,
    ) -> Result<Self> {
        check_csc_structure(nrows, ncols, &col_ptr, &row_ind, values.len())?;
        Ok(Csc { nrows, ncols, col_ptr, row_ind, values })
    }

    /// Converts a CSR matrix to CSC. O(nnz + ncols). Returns
    /// [`SparseError::IndexOverflow`] when a row index does not fit in
    /// `I` (CSR never stores row indices, CSC must).
    pub fn from_csr(csr: &Csr<I, V>) -> Result<Csc<I, V>> {
        let t = csr.transpose()?;
        // The transpose's rows are our columns; reuse its arrays directly.
        Ok(Csc {
            nrows: csr.nrows(),
            ncols: csr.ncols(),
            col_ptr: t.row_ptr().to_vec(),
            row_ind: t.col_ind().to_vec(),
            values: t.values().to_vec(),
        })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The column-pointer array (`ncols + 1` entries).
    pub fn col_ptr(&self) -> &[I] {
        &self.col_ptr
    }

    /// The row-index array.
    pub fn row_ind(&self) -> &[I] {
        &self.row_ind
    }

    /// The value array (column-major order).
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// SpMV over the column range `[col_begin, col_end)`, *accumulating*
    /// into `y` (which the caller must zero). This is the building block
    /// for column partitioning: each thread runs a column block into its
    /// private `y`, followed by a reduction.
    #[allow(clippy::needless_range_loop)] // paper-style explicit index loop
    pub fn spmv_cols_acc(&self, col_begin: usize, col_end: usize, x: &[V], y: &mut [V]) {
        debug_assert!(col_end <= self.ncols);
        for c in col_begin..col_end {
            let xv = x[c];
            let lo = self.col_ptr[c].index();
            let hi = self.col_ptr[c + 1].index();
            for j in lo..hi {
                y[self.row_ind[j].index()] += self.values[j] * xv;
            }
        }
    }

    /// Converts to COO.
    pub fn to_coo(&self) -> Coo<V> {
        let mut coo = Coo::with_capacity(self.nrows, self.ncols, self.nnz());
        for c in 0..self.ncols {
            for j in self.col_ptr[c].index()..self.col_ptr[c + 1].index() {
                coo.push(self.row_ind[j].index(), c, self.values[j])
                    .expect("CSC invariants guarantee in-bounds");
            }
        }
        coo
    }
}

/// The CSC invariants against borrowed arrays (mirror of
/// [`crate::csr::check_csr_structure`] with CSC-flavoured messages).
#[allow(clippy::needless_range_loop)] // explicit j-indexing mirrors the kernel
fn check_csc_structure<I: SpIndex>(
    nrows: usize,
    ncols: usize,
    col_ptr: &[I],
    row_ind: &[I],
    nvalues: usize,
) -> Result<()> {
    if col_ptr.len() != ncols + 1 {
        return Err(SparseError::MalformedPointers(format!(
            "col_ptr length {} != ncols + 1 = {}",
            col_ptr.len(),
            ncols + 1
        )));
    }
    if row_ind.len() != nvalues {
        return Err(SparseError::MalformedPointers("row_ind/values length mismatch".into()));
    }
    if col_ptr[0].index() != 0 || col_ptr[ncols].index() != row_ind.len() {
        return Err(SparseError::MalformedPointers("col_ptr endpoints invalid".into()));
    }
    for c in 0..ncols {
        let (lo, hi) = (col_ptr[c].index(), col_ptr[c + 1].index());
        if lo > hi {
            return Err(SparseError::MalformedPointers(format!("col_ptr decreases at column {c}")));
        }
        let mut prev: Option<usize> = None;
        for j in lo..hi {
            let r = row_ind[j].index();
            if r >= nrows {
                return Err(SparseError::IndexOutOfBounds { row: r, col: c, nrows, ncols });
            }
            if let Some(p) = prev {
                if r <= p {
                    return Err(SparseError::UnsortedIndices { row: c });
                }
            }
            prev = Some(r);
        }
    }
    Ok(())
}

impl<I: SpIndex, V: Scalar> SpMv<V> for Csc<I, V> {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn kind(&self) -> FormatKind {
        FormatKind::Csc
    }
    fn size_bytes(&self) -> usize {
        self.nnz() * (I::BYTES + V::BYTES) + (self.ncols + 1) * I::BYTES
    }

    fn spmv(&self, x: &[V], y: &mut [V]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        for v in y.iter_mut() {
            *v = V::zero();
        }
        self.spmv_cols_acc(0, self.ncols, x, y);
    }

    fn validate(&self) -> std::result::Result<(), SparseError> {
        check_csc_structure(self.nrows, self.ncols, &self.col_ptr, &self.row_ind, self.values.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::paper_matrix;

    #[test]
    fn from_csr_roundtrip() {
        let coo = paper_matrix();
        let csr = coo.to_csr();
        let csc = Csc::from_csr(&csr).unwrap();
        assert_eq!(csc.nnz(), csr.nnz());
        let mut back = csc.to_coo();
        back.canonicalize();
        assert_eq!(back.entries(), coo.entries());
    }

    #[test]
    fn spmv_matches_reference() {
        let coo = paper_matrix();
        let csc = Csc::from_csr(&coo.to_csr()).unwrap();
        let x: Vec<f64> = (0..6).map(|i| 2.0 - i as f64 * 0.3).collect();
        let mut y = vec![1.0; 6];
        let mut y_ref = vec![0.0; 6];
        csc.spmv(&x, &mut y);
        coo.spmv_reference(&x, &mut y_ref);
        for (a, b) in y.iter().zip(&y_ref) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn column_range_accumulation() {
        let coo = paper_matrix();
        let csc = Csc::from_csr(&coo.to_csr()).unwrap();
        let x = vec![1.0; 6];
        let mut y_full = vec![0.0; 6];
        csc.spmv(&x, &mut y_full);

        // Two private y vectors reduced at the end (the §II-C pattern).
        let mut y_a = vec![0.0; 6];
        let mut y_b = vec![0.0; 6];
        csc.spmv_cols_acc(0, 3, &x, &mut y_a);
        csc.spmv_cols_acc(3, 6, &x, &mut y_b);
        let reduced: Vec<f64> = y_a.iter().zip(&y_b).map(|(a, b)| a + b).collect();
        for (a, b) in reduced.iter().zip(&y_full) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn validation_rejects_bad_input() {
        let r = Csc::<u32, f64>::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]);
        assert!(r.is_err());
        let r = Csc::<u32, f64>::from_raw_parts(2, 2, vec![0, 1, 2], vec![0, 5], vec![1.0, 1.0]);
        assert!(r.is_err());
    }
}
