//! Dependency-free CRC-32 (IEEE 802.3, polynomial `0xEDB88320`).
//!
//! Used by the binary container ([`crate::io`]) to detect corruption of
//! persisted matrices: a pre-encoded CSR-DU/CSR-VI container is a
//! long-lived artifact that crosses trust boundaries (disk, network,
//! other tenants), and a single flipped value byte would otherwise load
//! silently and poison every subsequent SpMV.
//!
//! This is the ubiquitous reflected CRC-32 (zlib/gzip/PNG variant):
//! initial value `0xFFFF_FFFF`, final XOR `0xFFFF_FFFF`, table-driven one
//! byte at a time. Throughput is far above what container I/O needs, and
//! the implementation stays dependency-free per the workspace's offline
//! build constraint.

/// Byte-indexed lookup table for the reflected polynomial `0xEDB88320`.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Incremental CRC-32 state, for hashing data that arrives in chunks.
///
/// ```
/// use spmv_core::crc32::{crc32, Crc32};
///
/// let mut h = Crc32::new();
/// h.update(b"123");
/// h.update(b"456789");
/// assert_eq!(h.finish(), crc32(b"123456789"));
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Returns the final checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The CRC-32 "check" value and other standard vectors.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        for split in [0, 1, 13, 4096, 9999, 10_000] {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), crc32(&data), "split at {split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"container payload with values".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), base, "flip at byte {byte} bit {bit}");
            }
        }
    }
}
