//! DIA / CDS (Compressed Diagonal Storage) — §III-A baseline.
//!
//! Stores each populated diagonal as a dense strip of length `nrows`;
//! indexing data shrinks to one offset per diagonal. Ideal for banded
//! stencil matrices, useless for scattered patterns (every populated
//! diagonal costs a full strip).

use crate::coo::Coo;
use crate::csr::Csr;
use crate::index::SpIndex;
use crate::scalar::Scalar;
use crate::spmv::{FormatKind, SpMv};
use std::collections::BTreeSet;

/// A sparse matrix in diagonal storage format.
///
/// `offsets[d]` is the diagonal offset (`col - row`, negative = below the
/// main diagonal); `data[d * nrows + r]` holds `A[r, r + offsets[d]]` (zero
/// where that column falls outside the matrix or the entry is absent).
#[derive(Debug, Clone, PartialEq)]
pub struct Dia<V: Scalar = f64> {
    nrows: usize,
    ncols: usize,
    nnz: usize,
    offsets: Vec<isize>,
    data: Vec<V>,
}

impl<V: Scalar> Dia<V> {
    /// Builds DIA from CSR.
    pub fn from_csr<I: SpIndex>(csr: &Csr<I, V>) -> Dia<V> {
        let mut present: BTreeSet<isize> = BTreeSet::new();
        for (r, c, _) in csr.iter() {
            present.insert(c as isize - r as isize);
        }
        let offsets: Vec<isize> = present.into_iter().collect();
        let mut data = vec![V::zero(); offsets.len() * csr.nrows()];
        for (r, c, v) in csr.iter() {
            let off = c as isize - r as isize;
            let d = offsets.binary_search(&off).expect("offset collected above");
            data[d * csr.nrows() + r] = v;
        }
        Dia { nrows: csr.nrows(), ncols: csr.ncols(), nnz: csr.nnz(), offsets, data }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored diagonals.
    pub fn num_diagonals(&self) -> usize {
        self.offsets.len()
    }

    /// Diagonal offsets, ascending.
    pub fn offsets(&self) -> &[isize] {
        &self.offsets
    }

    /// Fraction of stored slots that are real non-zeros.
    pub fn fill_ratio(&self) -> f64 {
        if self.data.is_empty() {
            return 1.0;
        }
        self.nnz as f64 / self.data.len() as f64
    }

    /// Converts back to COO, dropping padding zeros.
    pub fn to_coo(&self) -> Coo<V> {
        let mut coo = Coo::with_capacity(self.nrows, self.ncols, self.nnz);
        for (d, &off) in self.offsets.iter().enumerate() {
            for r in 0..self.nrows {
                let c = r as isize + off;
                if c < 0 || c >= self.ncols as isize {
                    continue;
                }
                let v = self.data[d * self.nrows + r];
                if v != V::zero() {
                    coo.push(r, c as usize, v).expect("in bounds");
                }
            }
        }
        coo
    }
}

impl<V: Scalar> SpMv<V> for Dia<V> {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn nnz(&self) -> usize {
        self.nnz
    }
    fn kind(&self) -> FormatKind {
        FormatKind::Dia
    }
    fn size_bytes(&self) -> usize {
        self.data.len() * V::BYTES + self.offsets.len() * std::mem::size_of::<isize>()
    }

    fn spmv(&self, x: &[V], y: &mut [V]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        for v in y.iter_mut() {
            *v = V::zero();
        }
        for (d, &off) in self.offsets.iter().enumerate() {
            let strip = &self.data[d * self.nrows..(d + 1) * self.nrows];
            // Row range for which r + off is a valid column:
            // r >= -off (col >= 0) and r < ncols - off (col < ncols).
            let r_lo = if off < 0 { (-off) as usize } else { 0 };
            let r_hi = self.nrows.min((self.ncols as isize - off).max(0) as usize);
            for r in r_lo..r_hi.max(r_lo) {
                let c = (r as isize + off) as usize;
                y[r] += strip[r] * x[c];
            }
        }
    }

    fn validate(&self) -> std::result::Result<(), crate::error::SparseError> {
        use crate::error::SparseError;
        if self.data.len() != self.offsets.len() * self.nrows {
            return Err(SparseError::MalformedPointers(format!(
                "DIA data length {} != diagonals {} * nrows {}",
                self.data.len(),
                self.offsets.len(),
                self.nrows
            )));
        }
        let mut stored = 0usize;
        let mut prev: Option<isize> = None;
        for (d, &off) in self.offsets.iter().enumerate() {
            if let Some(p) = prev {
                if off <= p {
                    return Err(SparseError::InvalidFormat(format!(
                        "diagonal offsets not strictly ascending at position {d}"
                    )));
                }
            }
            prev = Some(off);
            if self.nrows > 0
                && self.ncols > 0
                && (off <= -(self.nrows as isize) || off >= self.ncols as isize)
            {
                return Err(SparseError::InvalidFormat(format!(
                    "diagonal offset {off} lies entirely outside a {}x{} matrix",
                    self.nrows, self.ncols
                )));
            }
            for r in 0..self.nrows {
                let v = self.data[d * self.nrows + r];
                if v == V::zero() {
                    continue;
                }
                let c = r as isize + off;
                if c < 0 || c >= self.ncols as isize {
                    return Err(SparseError::InvalidFormat(format!(
                        "non-zero at row {r} of diagonal {off} maps outside the matrix"
                    )));
                }
                stored += 1;
            }
        }
        // CSR may carry explicit zeros, so stored can undercount nnz but
        // never exceed it.
        if stored > self.nnz {
            return Err(SparseError::InvalidFormat(format!(
                "recorded nnz {} below stored non-zeros {stored}",
                self.nnz
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::paper_matrix;

    #[test]
    fn tridiagonal_stores_three_diagonals() {
        let n = 50;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        let coo = Coo::from_triplets(n, n, t).unwrap();
        let dia = Dia::from_csr(&coo.to_csr());
        assert_eq!(dia.num_diagonals(), 3);
        assert_eq!(dia.offsets(), &[-1, 0, 1]);

        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut y = vec![0.0; n];
        let mut y_ref = vec![0.0; n];
        dia.spmv(&x, &mut y);
        coo.spmv_reference(&x, &mut y_ref);
        assert_eq!(y, y_ref);
    }

    #[test]
    fn spmv_matches_reference_on_paper_matrix() {
        let coo = paper_matrix();
        let dia = Dia::from_csr(&coo.to_csr());
        let x: Vec<f64> = (0..6).map(|i| 1.5 - i as f64).collect();
        let mut y = vec![3.0; 6];
        let mut y_ref = vec![0.0; 6];
        dia.spmv(&x, &mut y);
        coo.spmv_reference(&x, &mut y_ref);
        for (a, b) in y.iter().zip(&y_ref) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn roundtrip() {
        let coo = paper_matrix();
        let dia = Dia::from_csr(&coo.to_csr());
        let mut back = dia.to_coo();
        back.canonicalize();
        assert_eq!(back.entries(), coo.entries());
    }

    #[test]
    fn rectangular_matrices() {
        // Wide and tall rectangles exercise the r_lo/r_hi clamping.
        for (nr, nc) in [(3, 7), (7, 3)] {
            let coo = Coo::from_triplets(nr, nc, vec![(0, nc - 1, 1.0), (nr - 1, 0, 2.0)]).unwrap();
            let dia = Dia::from_csr(&coo.to_csr());
            let x = vec![1.0; nc];
            let mut y = vec![0.0; nr];
            let mut y_ref = vec![0.0; nr];
            dia.spmv(&x, &mut y);
            coo.spmv_reference(&x, &mut y_ref);
            assert_eq!(y, y_ref, "{nr}x{nc}");
        }
    }
}
