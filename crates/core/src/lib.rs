//! # spmv-core — sparse matrix formats and SpMV kernels with index & value compression
//!
//! This crate implements the storage formats and Sparse Matrix-Vector
//! multiplication (SpMV, `y = A·x`) kernels studied in
//!
//! > K. Kourtis, G. Goumas, N. Koziris, *"Improving the Performance of
//! > Multithreaded Sparse Matrix-Vector Multiplication using Index and Value
//! > Compression"*, ICPP 2008.
//!
//! The paper's contributions are two compressed variants of the classic
//! Compressed Sparse Row (CSR) format:
//!
//! * [`CsrDu`](csr_du::CsrDu) — **CSR Delta Unit**: the column-index array is
//!   replaced by a byte stream of *units*, each holding delta-encoded column
//!   indices at the narrowest width (u8/u16/u32/u64) that fits, reducing the
//!   index portion of the working set.
//! * [`CsrVi`](csr_vi::CsrVi) — **CSR Value Index**: the value array is
//!   replaced by a table of *unique* values plus narrow per-element indices
//!   into that table; profitable when the matrix has few distinct values
//!   (high total-to-unique ratio).
//!
//! Both trade extra CPU work for reduced memory traffic, which pays off when
//! several cores contend for shared memory bandwidth.
//!
//! Also provided, as baselines and comparators:
//!
//! * [`Coo`], [`Csr`], [`Csc`] — the classic general formats;
//! * [`Bcsr`](bcsr::Bcsr), [`Ell`](ell::Ell), [`Dia`](dia::Dia),
//!   [`Jad`](jad::Jad) — the structured formats surveyed in the paper's
//!   related-work section;
//! * [`Dcsr`](dcsr::Dcsr) — a reimplementation of Willcock & Lumsdaine's
//!   byte-oriented delta-compressed CSR, the closest prior work;
//! * [`CsrDuVi`](csr_duvi::CsrDuVi) — the combination of both compression
//!   schemes (from the companion CF'08 paper).
//!
//! ## Quick example
//!
//! ```
//! use spmv_core::{Coo, Csr, SpMv};
//! use spmv_core::csr_du::CsrDu;
//!
//! // The 6x6 example matrix from Fig. 1 of the paper.
//! let coo = spmv_core::examples::paper_matrix();
//! let csr: Csr = coo.to_csr();
//! let du = CsrDu::from_csr(&csr, &Default::default());
//!
//! let x = vec![1.0f64; 6];
//! let mut y0 = vec![0.0; 6];
//! let mut y1 = vec![0.0; 6];
//! csr.spmv(&x, &mut y0);
//! du.spmv(&x, &mut y1);
//! assert_eq!(y0, y1);
//! // The compressed structure is smaller than CSR's col_ind array:
//! assert!(du.ctl().len() < csr.nnz() * 4);
//! ```

pub mod bcsr;
pub mod builder;
pub mod checked;
pub mod coo;
pub mod crc32;
pub mod csc;
pub mod csr;
pub mod csr_du;
pub mod csr_duvi;
pub mod csr_vi;
pub mod dcsr;
pub mod dense;
pub mod dia;
pub mod ell;
pub mod error;
pub mod examples;
pub mod hyb;
pub mod index;
pub mod io;
pub mod jad;
pub mod scalar;
pub mod simd;
pub mod spmm;
pub mod spmspv;
pub mod spmv;
pub mod stats;
pub mod sym;
pub mod varint;

pub use builder::CsrBuilder;
pub use checked::{CheckOptions, CheckedSpMv};
pub use coo::Coo;
pub use csc::Csc;
pub use csr::Csr;
pub use dense::Dense;
pub use error::SparseError;
pub use index::SpIndex;
pub use io::{fingerprint_csr, read_fingerprint, Fingerprint, LoadLimits};
pub use scalar::Scalar;
pub use simd::Isa;
pub use spmm::{DenseBlock, DenseBlockMut, SpMm};
pub use spmspv::{SpMSpV, SpMSpVPath, SparseVec};
pub use spmv::{FormatKind, SpMv};
pub use stats::{SizeReport, WorkingSet};
pub use sym::SymCsr;

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::bcsr::Bcsr;
    pub use crate::checked::{CheckOptions, CheckedSpMv};
    pub use crate::csr_du::{CsrDu, DuOptions};
    pub use crate::csr_duvi::CsrDuVi;
    pub use crate::csr_vi::CsrVi;
    pub use crate::dcsr::Dcsr;
    pub use crate::dia::Dia;
    pub use crate::ell::Ell;
    pub use crate::hyb::Hyb;
    pub use crate::jad::Jad;
    pub use crate::sym::SymCsr;
    pub use crate::{
        Coo, Csc, Csr, Dense, DenseBlock, DenseBlockMut, FormatKind, LoadLimits, Scalar, SpIndex,
        SpMSpV, SpMSpVPath, SpMm, SpMv, SparseError, SparseVec,
    };
}
