//! Coordinate (COO / triplet) format — the universal construction format.
//!
//! Each non-zero is stored as an `(row, col, value)` triplet. COO is the
//! natural interchange and assembly format (MatrixMarket files are COO);
//! every other format in this crate is built from it, usually via
//! [`Coo::to_csr`].

use crate::csr::Csr;
use crate::error::{Result, SparseError};
use crate::index::SpIndex;
use crate::scalar::Scalar;

/// A sparse matrix in coordinate (triplet) form.
///
/// Invariants maintained by the constructors: every entry lies inside
/// `nrows x ncols`. Entries may be unsorted and may contain duplicates until
/// [`Coo::canonicalize`] is called; `to_csr` canonicalizes implicitly.
#[derive(Debug, Clone, PartialEq)]
pub struct Coo<V: Scalar = f64> {
    nrows: usize,
    ncols: usize,
    entries: Vec<(usize, usize, V)>,
}

impl<V: Scalar> Coo<V> {
    /// Creates an empty `nrows x ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Coo { nrows, ncols, entries: Vec::new() }
    }

    /// Creates an empty matrix with room for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        Coo { nrows, ncols, entries: Vec::with_capacity(cap) }
    }

    /// Builds a COO matrix from triplets, validating bounds.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, V)>,
    ) -> Result<Self> {
        let mut m = Coo::new(nrows, ncols);
        for (r, c, v) in triplets {
            m.push(r, c, v)?;
        }
        Ok(m)
    }

    /// Appends one entry, validating bounds.
    pub fn push(&mut self, row: usize, col: usize, value: V) -> Result<()> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.entries.push((row, col, value));
        Ok(())
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries (including duplicates, if any).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// The stored triplets.
    pub fn entries(&self) -> &[(usize, usize, V)] {
        &self.entries
    }

    /// Sorts entries row-major and merges duplicates by summing their
    /// values (the standard finite-element assembly convention). Exact
    /// zeros produced by cancellation are *kept* — sparsity pattern is
    /// structural, matching the paper's treatment.
    pub fn canonicalize(&mut self) {
        self.entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        self.entries.dedup_by(|later, earlier| {
            if later.0 == earlier.0 && later.1 == earlier.1 {
                earlier.2 += later.2;
                true
            } else {
                false
            }
        });
    }

    /// `true` if entries are sorted row-major with no duplicates.
    pub fn is_canonical(&self) -> bool {
        self.entries.windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1))
    }

    /// Converts to CSR with the default `u32` index type.
    ///
    /// Canonicalizes a copy first if needed.
    pub fn to_csr(&self) -> Csr<u32, V> {
        self.to_csr_with_index::<u32>()
            .expect("matrix dimensions exceed u32 index range; use to_csr_with_index::<u64>()")
    }

    /// Converts to CSR with an explicit index type.
    pub fn to_csr_with_index<I: SpIndex>(&self) -> Result<Csr<I, V>> {
        let canonical;
        let entries: &[(usize, usize, V)] = if self.is_canonical() {
            &self.entries
        } else {
            let mut c = self.clone();
            c.canonicalize();
            canonical = c;
            &canonical.entries
        };

        let mut row_ptr: Vec<I> = Vec::with_capacity(self.nrows + 1);
        let mut col_ind: Vec<I> = Vec::with_capacity(entries.len());
        let mut values: Vec<V> = Vec::with_capacity(entries.len());

        row_ptr.push(I::from_usize(0)?);
        let mut current_row = 0usize;
        for &(r, c, v) in entries {
            while current_row < r {
                row_ptr.push(I::from_usize(col_ind.len())?);
                current_row += 1;
            }
            col_ind.push(I::from_usize(c)?);
            values.push(v);
        }
        while current_row < self.nrows {
            row_ptr.push(I::from_usize(col_ind.len())?);
            current_row += 1;
        }

        Csr::from_raw_parts(self.nrows, self.ncols, row_ptr, col_ind, values)
    }

    /// Transposes the matrix (swaps rows and columns).
    pub fn transpose(&self) -> Coo<V> {
        Coo {
            nrows: self.ncols,
            ncols: self.nrows,
            entries: self.entries.iter().map(|&(r, c, v)| (c, r, v)).collect(),
        }
    }

    /// Materializes into a dense row-major matrix — for tests and tiny
    /// examples only.
    pub fn to_dense(&self) -> crate::dense::Dense<V> {
        let mut d = crate::dense::Dense::zeros(self.nrows, self.ncols);
        for &(r, c, v) in &self.entries {
            *d.get_mut(r, c) += v;
        }
        d
    }

    /// Reference SpMV computed straight from the triplets. O(nnz), no
    /// assumptions about ordering. Used as the oracle in tests.
    pub fn spmv_reference(&self, x: &[V], y: &mut [V]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        for v in y.iter_mut() {
            *v = V::zero();
        }
        for &(r, c, v) in &self.entries {
            y[r] += v * x[c];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coo<f64> {
        Coo::from_triplets(3, 4, vec![(2, 1, 3.0), (0, 0, 1.0), (1, 3, 2.0), (0, 2, -1.0)]).unwrap()
    }

    #[test]
    fn push_validates_bounds() {
        let mut m: Coo<f64> = Coo::new(2, 2);
        assert!(m.push(0, 0, 1.0).is_ok());
        assert!(matches!(m.push(2, 0, 1.0), Err(SparseError::IndexOutOfBounds { .. })));
        assert!(matches!(m.push(0, 5, 1.0), Err(SparseError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn canonicalize_sorts_and_merges() {
        let mut m = Coo::from_triplets(2, 2, vec![(1, 1, 1.0), (0, 0, 2.0), (1, 1, 3.0)]).unwrap();
        assert!(!m.is_canonical());
        m.canonicalize();
        assert!(m.is_canonical());
        assert_eq!(m.entries(), &[(0, 0, 2.0), (1, 1, 4.0)]);
    }

    #[test]
    fn canonicalize_keeps_cancelled_zero() {
        let mut m = Coo::from_triplets(1, 1, vec![(0, 0, 1.0), (0, 0, -1.0)]).unwrap();
        m.canonicalize();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.entries()[0].2, 0.0);
    }

    #[test]
    fn to_csr_handles_empty_rows() {
        let m = Coo::from_triplets(4, 4, vec![(0, 1, 1.0), (3, 2, 2.0)]).unwrap();
        let csr = m.to_csr();
        assert_eq!(csr.row_ptr(), &[0, 1, 1, 1, 2]);
        assert_eq!(csr.col_ind(), &[1, 2]);
    }

    #[test]
    fn to_csr_empty_matrix() {
        let m: Coo<f64> = Coo::new(3, 3);
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.row_ptr(), &[0, 0, 0, 0]);
    }

    #[test]
    fn spmv_reference_matches_dense() {
        let m = sample();
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let mut y = vec![0.0; 3];
        m.spmv_reference(&x, &mut y);
        assert_eq!(y, vec![1.0 - 3.0, 2.0 * 4.0, 3.0 * 2.0]);
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let t = sample().transpose();
        assert_eq!(t.nrows(), 4);
        assert_eq!(t.ncols(), 3);
        assert!(t.entries().contains(&(1, 2, 3.0)));
    }

    #[test]
    fn to_csr_u16_overflow_detected() {
        // A column index beyond u16::MAX cannot be stored in u16 col_ind.
        let m = Coo::from_triplets(1, 70_000, vec![(0, 69_999, 1.0)]).unwrap();
        assert!(m.to_csr_with_index::<u16>().is_err());
        // Row *count* alone does not overflow: row_ptr stores nnz offsets.
        let m = Coo::from_triplets(70_000, 2, vec![(69_999, 0, 1.0)]).unwrap();
        assert!(m.to_csr_with_index::<u16>().is_ok());
    }
}
