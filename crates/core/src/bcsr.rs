//! BCSR (Blocked CSR) — one of the classic structured baselines (§III-A).
//!
//! The matrix is tiled with fixed `R x C` dense blocks aligned to the block
//! grid; only blocks containing at least one non-zero are stored, each as a
//! dense `R*C` patch. Index data shrinks to one column index per *block*
//! (and `nrows/R + 1` row pointers), at the price of storing explicit
//! zeros inside partially-filled blocks. Whether the trade pays off depends
//! on the block fill ratio — exactly the effect the paper's related work
//! (register blocking, SPARSITY, VBR) tunes for.

use crate::coo::Coo;
use crate::csr::Csr;
use crate::error::Result;
use crate::index::SpIndex;
use crate::scalar::Scalar;
use crate::spmv::{FormatKind, SpMv};
use std::collections::BTreeMap;

/// A sparse matrix in Blocked CSR format with runtime-chosen block size.
#[derive(Debug, Clone, PartialEq)]
pub struct Bcsr<I: SpIndex = u32, V: Scalar = f64> {
    nrows: usize,
    ncols: usize,
    nnz: usize,
    br: usize,
    bc: usize,
    /// Row pointers over block rows: `nrows.div_ceil(br) + 1` entries.
    block_row_ptr: Vec<I>,
    /// Block-column index of each stored block.
    block_col: Vec<I>,
    /// Dense block payloads, `br * bc` values each, row-major.
    blocks: Vec<V>,
}

impl<I: SpIndex, V: Scalar> Bcsr<I, V> {
    /// Builds BCSR from CSR with `br x bc` blocks.
    pub fn from_csr(csr: &Csr<I, V>, br: usize, bc: usize) -> Result<Bcsr<I, V>> {
        assert!(br >= 1 && bc >= 1, "block dimensions must be positive");
        let n_block_rows = csr.nrows().div_ceil(br);
        let mut block_row_ptr: Vec<I> = Vec::with_capacity(n_block_rows + 1);
        let mut block_col: Vec<I> = Vec::new();
        let mut blocks: Vec<V> = Vec::new();

        block_row_ptr.push(I::from_usize(0)?);
        for brow in 0..n_block_rows {
            // Collect this block row's non-zeros grouped by block column.
            let mut per_bcol: BTreeMap<usize, Vec<V>> = BTreeMap::new();
            let row_lo = brow * br;
            let row_hi = (row_lo + br).min(csr.nrows());
            for r in row_lo..row_hi {
                for (c, v) in csr.row_iter(r) {
                    let bcol = c / bc;
                    let patch = per_bcol.entry(bcol).or_insert_with(|| vec![V::zero(); br * bc]);
                    patch[(r - row_lo) * bc + (c - bcol * bc)] = v;
                }
            }
            for (bcol, patch) in per_bcol {
                block_col.push(I::from_usize(bcol)?);
                blocks.extend_from_slice(&patch);
            }
            block_row_ptr.push(I::from_usize(block_col.len())?);
        }

        Ok(Bcsr {
            nrows: csr.nrows(),
            ncols: csr.ncols(),
            nnz: csr.nnz(),
            br,
            bc,
            block_row_ptr,
            block_col,
            blocks,
        })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of structural non-zeros of the original matrix.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Block dimensions `(br, bc)`.
    pub fn block_dims(&self) -> (usize, usize) {
        (self.br, self.bc)
    }

    /// Number of stored blocks.
    pub fn num_blocks(&self) -> usize {
        self.block_col.len()
    }

    /// Fraction of stored block slots that hold an original non-zero
    /// (1.0 = perfectly blocked matrix; low values mean heavy fill-in).
    pub fn fill_ratio(&self) -> f64 {
        if self.blocks.is_empty() {
            return 1.0;
        }
        self.nnz as f64 / self.blocks.len() as f64
    }

    /// Converts back to COO, dropping the explicit fill-in zeros.
    pub fn to_coo(&self) -> Coo<V> {
        let mut coo = Coo::with_capacity(self.nrows, self.ncols, self.nnz);
        let n_block_rows = self.nrows.div_ceil(self.br);
        for brow in 0..n_block_rows {
            let lo = self.block_row_ptr[brow].index();
            let hi = self.block_row_ptr[brow + 1].index();
            for b in lo..hi {
                let bcol = self.block_col[b].index();
                let patch = &self.blocks[b * self.br * self.bc..(b + 1) * self.br * self.bc];
                for dr in 0..self.br {
                    for dc in 0..self.bc {
                        let v = patch[dr * self.bc + dc];
                        let (r, c) = (brow * self.br + dr, bcol * self.bc + dc);
                        if v != V::zero() && r < self.nrows && c < self.ncols {
                            coo.push(r, c, v).expect("in bounds by construction");
                        }
                    }
                }
            }
        }
        coo
    }
}

impl<I: SpIndex, V: Scalar> SpMv<V> for Bcsr<I, V> {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn nnz(&self) -> usize {
        self.nnz
    }
    fn kind(&self) -> FormatKind {
        FormatKind::Bcsr
    }
    fn size_bytes(&self) -> usize {
        self.blocks.len() * V::BYTES
            + self.block_col.len() * I::BYTES
            + self.block_row_ptr.len() * I::BYTES
    }

    fn spmv(&self, x: &[V], y: &mut [V]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        for v in y.iter_mut() {
            *v = V::zero();
        }
        let n_block_rows = self.nrows.div_ceil(self.br);
        let bs = self.br * self.bc;
        for brow in 0..n_block_rows {
            let lo = self.block_row_ptr[brow].index();
            let hi = self.block_row_ptr[brow + 1].index();
            let row0 = brow * self.br;
            for b in lo..hi {
                let col0 = self.block_col[b].index() * self.bc;
                let patch = &self.blocks[b * bs..(b + 1) * bs];
                let cols = self.bc.min(self.ncols - col0);
                let rows = self.br.min(self.nrows - row0);
                for dr in 0..rows {
                    let mut acc = V::zero();
                    for dc in 0..cols {
                        acc += patch[dr * self.bc + dc] * x[col0 + dc];
                    }
                    y[row0 + dr] += acc;
                }
            }
        }
    }

    fn validate(&self) -> std::result::Result<(), crate::error::SparseError> {
        use crate::error::SparseError;
        if self.br == 0 || self.bc == 0 {
            return Err(SparseError::InvalidFormat("block dimensions must be positive".into()));
        }
        let n_block_rows = self.nrows.div_ceil(self.br);
        let n_block_cols = self.ncols.div_ceil(self.bc);
        if self.block_row_ptr.len() != n_block_rows + 1 {
            return Err(SparseError::MalformedPointers(format!(
                "block_row_ptr length {} != block rows + 1 = {}",
                self.block_row_ptr.len(),
                n_block_rows + 1
            )));
        }
        if self.blocks.len() != self.block_col.len() * self.br * self.bc {
            return Err(SparseError::MalformedPointers(format!(
                "blocks length {} != num_blocks {} * {}x{}",
                self.blocks.len(),
                self.block_col.len(),
                self.br,
                self.bc
            )));
        }
        if self.block_row_ptr[0].index() != 0
            || self.block_row_ptr[n_block_rows].index() != self.block_col.len()
        {
            return Err(SparseError::MalformedPointers("block_row_ptr endpoints invalid".into()));
        }
        let mut stored = 0usize;
        for brow in 0..n_block_rows {
            let (lo, hi) = (self.block_row_ptr[brow].index(), self.block_row_ptr[brow + 1].index());
            if lo > hi {
                return Err(SparseError::MalformedPointers(format!(
                    "block_row_ptr decreases at block row {brow}"
                )));
            }
            let mut prev: Option<usize> = None;
            for b in lo..hi {
                let bcol = self.block_col[b].index();
                if bcol >= n_block_cols {
                    return Err(SparseError::IndexOutOfBounds {
                        row: brow * self.br,
                        col: bcol * self.bc,
                        nrows: self.nrows,
                        ncols: self.ncols,
                    });
                }
                if let Some(p) = prev {
                    if bcol <= p {
                        return Err(SparseError::UnsortedIndices { row: brow * self.br });
                    }
                }
                prev = Some(bcol);
            }
            // Count real non-zeros to cross-check the recorded nnz; padding
            // slots outside the matrix must be zero or spmv would read them
            // into out-of-range rows/columns of the logical matrix.
            let row_hi = ((brow + 1) * self.br).min(self.nrows);
            for b in lo..hi {
                let col0 = self.block_col[b].index() * self.bc;
                let patch = &self.blocks[b * self.br * self.bc..(b + 1) * self.br * self.bc];
                for dr in 0..self.br {
                    for dc in 0..self.bc {
                        let v = patch[dr * self.bc + dc];
                        if v == V::zero() {
                            continue;
                        }
                        let (r, c) = (brow * self.br + dr, col0 + dc);
                        if r >= row_hi || c >= self.ncols {
                            return Err(SparseError::InvalidFormat(format!(
                                "non-zero in padding slot maps to ({r}, {c}) outside {}x{}",
                                self.nrows, self.ncols
                            )));
                        }
                        stored += 1;
                    }
                }
            }
        }
        if stored != self.nnz {
            return Err(SparseError::InvalidFormat(format!(
                "recorded nnz {} does not match stored non-zeros {stored}",
                self.nnz
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::paper_matrix;

    #[test]
    fn roundtrip_various_block_sizes() {
        let coo = paper_matrix();
        let csr = coo.to_csr();
        for (br, bc) in [(1, 1), (2, 2), (3, 3), (2, 3), (4, 4), (6, 6), (5, 7)] {
            let b = Bcsr::from_csr(&csr, br, bc).unwrap();
            let mut back = b.to_coo();
            back.canonicalize();
            assert_eq!(back.entries(), coo.entries(), "block {br}x{bc}");
        }
    }

    #[test]
    fn spmv_matches_reference_for_all_blockings() {
        let coo = paper_matrix();
        let csr = coo.to_csr();
        let x: Vec<f64> = (0..6).map(|i| 1.0 + i as f64).collect();
        let mut y_ref = vec![0.0; 6];
        coo.spmv_reference(&x, &mut y_ref);
        for (br, bc) in [(1, 1), (2, 2), (3, 2), (4, 4)] {
            let b = Bcsr::from_csr(&csr, br, bc).unwrap();
            let mut y = vec![7.0; 6];
            b.spmv(&x, &mut y);
            for (a, e) in y.iter().zip(&y_ref) {
                assert!((a - e).abs() < 1e-12, "block {br}x{bc}");
            }
        }
    }

    #[test]
    fn one_by_one_blocks_store_no_fill() {
        let csr = paper_matrix().to_csr();
        let b = Bcsr::from_csr(&csr, 1, 1).unwrap();
        assert_eq!(b.num_blocks(), 16);
        assert_eq!(b.fill_ratio(), 1.0);
    }

    #[test]
    fn fill_ratio_decreases_with_bigger_blocks() {
        let csr = paper_matrix().to_csr();
        let b1 = Bcsr::from_csr(&csr, 1, 1).unwrap();
        let b3 = Bcsr::from_csr(&csr, 3, 3).unwrap();
        assert!(b3.fill_ratio() < b1.fill_ratio());
    }

    #[test]
    fn dense_blocked_matrix_has_full_fill() {
        // A matrix that is exactly two 2x2 dense blocks.
        let coo = Coo::from_triplets(
            2,
            4,
            vec![
                (0, 0, 1.0),
                (0, 1, 2.0),
                (1, 0, 3.0),
                (1, 1, 4.0),
                (0, 2, 5.0),
                (0, 3, 6.0),
                (1, 2, 7.0),
                (1, 3, 8.0),
            ],
        )
        .unwrap();
        let b = Bcsr::from_csr(&coo.to_csr(), 2, 2).unwrap();
        assert_eq!(b.num_blocks(), 2);
        assert_eq!(b.fill_ratio(), 1.0);
    }

    #[test]
    fn ragged_edges_handled() {
        // 5x5 with 2x2 blocks: ragged last block row/column.
        let coo = Coo::from_triplets(5, 5, vec![(4, 4, 1.0), (4, 0, 2.0), (0, 4, 3.0)]).unwrap();
        let b = Bcsr::from_csr(&coo.to_csr(), 2, 2).unwrap();
        let x = vec![1.0; 5];
        let mut y = vec![0.0; 5];
        let mut y_ref = vec![0.0; 5];
        b.spmv(&x, &mut y);
        coo.spmv_reference(&x, &mut y_ref);
        assert_eq!(y, y_ref);
    }
}
