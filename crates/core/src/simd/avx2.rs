//! AVX2 (x86-64) kernels for the four hot loops: CSR row accumulate,
//! CSR-DU delta-unit decode, CSR-VI palette gather, and the fixed-`k`
//! SpMM panel accumulators. Concrete `f64`/`u32` only — the generic
//! formats fall back to the scalar kernels for every other type pair.
//!
//! # Bit-identity contract
//!
//! Each kernel performs exactly the scalar kernel's floating-point
//! operations in the same order:
//!
//! * multiplies and adds stay separate (`vmulpd` + `vaddpd`, never
//!   `vfmadd`) because the scalar kernels round the product and the sum
//!   independently;
//! * `k ∈ {2, 4, 8}` panels vectorize *across* the `k` independent
//!   per-lane accumulator chains (lane `v` sees the same `+= a * x[v]`
//!   sequence as `FixedAcc`);
//! * `k = 1` computes four products per step (SIMD loads/gathers +
//!   `vmulpd`) but folds them into the single row accumulator lane by
//!   lane in stream order, matching the scalar reduction chain.
//!
//! Integer work (delta prefix sums, palette-index widening) is exact, so
//! vectorizing it cannot perturb results.
//!
//! # Dispatch-site preconditions (checked by callers)
//!
//! Every entry point here is `unsafe fn` + `#[target_feature]`: callers
//! must have verified AVX2 support ([`crate::simd::avx2_ok`]). Gathers
//! index with `i32` lanes, so callers also guarantee `ncols <= i32::MAX`
//! and (for palettes) `vals_unique.len() <= i32::MAX`.

#![allow(clippy::too_many_arguments)]

use std::arch::x86_64::*;

use crate::csr_du::{UnitType, FLAG_NEW_ROW, FLAG_ROW_JMP};
use crate::varint::read_varint;

/// Where a kernel reads its per-element values from: directly (CSR,
/// CSR-DU) or through a unique-value table (CSR-VI, CSR-DU-VI), one
/// variant per palette index width. The `get`/`get4` accessors perform
/// exactly the loads of the scalar closures `|j| values[j]` and
/// `|j| vals[ind[j] as usize]`.
#[derive(Clone, Copy)]
pub(crate) enum ValSrc<'a> {
    Direct(&'a [f64]),
    Pal8(&'a [f64], &'a [u8]),
    Pal16(&'a [f64], &'a [u16]),
    Pal32(&'a [f64], &'a [u32]),
}

impl ValSrc<'_> {
    /// Value of element `j` (same load sequence as the scalar kernels).
    ///
    /// # Safety
    /// `j` must index a stored element; palette indices must be in-table.
    #[inline(always)]
    unsafe fn get(&self, j: usize) -> f64 {
        match self {
            ValSrc::Direct(v) => *v.get_unchecked(j),
            ValSrc::Pal8(pal, ind) => *pal.get_unchecked(*ind.get_unchecked(j) as usize),
            ValSrc::Pal16(pal, ind) => *pal.get_unchecked(*ind.get_unchecked(j) as usize),
            ValSrc::Pal32(pal, ind) => *pal.get_unchecked(*ind.get_unchecked(j) as usize),
        }
    }

    /// Values of elements `j..j+4` as a vector (contiguous load for
    /// direct values, widen + gather for palettes).
    ///
    /// # Safety
    /// As [`ValSrc::get`] for all of `j..j+4`; AVX2 must be enabled in
    /// the caller. Palette tables must have `<= i32::MAX` entries.
    #[inline(always)]
    unsafe fn get4(&self, j: usize) -> __m256d {
        match self {
            ValSrc::Direct(v) => _mm256_loadu_pd(v.as_ptr().add(j)),
            ValSrc::Pal8(pal, ind) => {
                let raw = i32::from_le_bytes([
                    *ind.get_unchecked(j),
                    *ind.get_unchecked(j + 1),
                    *ind.get_unchecked(j + 2),
                    *ind.get_unchecked(j + 3),
                ]);
                let idx = _mm_cvtepu8_epi32(_mm_cvtsi32_si128(raw));
                _mm256_i32gather_pd::<8>(pal.as_ptr(), idx)
            }
            ValSrc::Pal16(pal, ind) => {
                let idx =
                    _mm_cvtepu16_epi32(_mm_loadl_epi64(ind.as_ptr().add(j) as *const __m128i));
                _mm256_i32gather_pd::<8>(pal.as_ptr(), idx)
            }
            ValSrc::Pal32(pal, ind) => {
                let idx = _mm_loadu_si128(ind.as_ptr().add(j) as *const __m128i);
                _mm256_i32gather_pd::<8>(pal.as_ptr(), idx)
            }
        }
    }
}

/// Folds four products into the scalar accumulator in lane order —
/// exactly the scalar kernel's `acc += p0; acc += p1; acc += p2;
/// acc += p3` reduction chain.
///
/// # Safety
/// AVX2 must be enabled in the caller.
#[inline(always)]
unsafe fn fold4(mut acc: f64, p: __m256d) -> f64 {
    let lo = _mm256_castpd256_pd128(p);
    let hi = _mm256_extractf128_pd::<1>(p);
    acc += _mm_cvtsd_f64(lo);
    acc += _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
    acc += _mm_cvtsd_f64(hi);
    acc += _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
    acc
}

/// CSR / CSR-VI row-range SpMV (`k = 1`). Mirrors `Csr::spmv_rows` /
/// `csr_vi::kernel`: per row, accumulate `values[j] * x[col_ind[j]]` in
/// stream order, store once. Four columns are gathered and multiplied
/// per step; the adds stay sequential (see [`fold4`]).
///
/// # Safety
/// AVX2 required; `row_ptr`/`col_ind` must describe a valid CSR
/// structure with in-bounds columns (`< x.len() <= i32::MAX + 1`), `src`
/// must cover every element index, and `y` must cover
/// `[row_begin - y_base, row_end - y_base)`.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn rows_k1(
    row_ptr: &[u32],
    col_ind: &[u32],
    src: ValSrc<'_>,
    row_begin: usize,
    row_end: usize,
    y_base: usize,
    x: &[f64],
    y: &mut [f64],
) {
    let xp = x.as_ptr();
    for i in row_begin..row_end {
        let lo = *row_ptr.get_unchecked(i) as usize;
        let hi = *row_ptr.get_unchecked(i + 1) as usize;
        let mut acc = 0.0f64;
        let mut j = lo;
        while j + 4 <= hi {
            let cols = _mm_loadu_si128(col_ind.as_ptr().add(j) as *const __m128i);
            let xv = _mm256_i32gather_pd::<8>(xp, cols);
            let p = _mm256_mul_pd(src.get4(j), xv);
            acc = fold4(acc, p);
            j += 4;
        }
        while j < hi {
            acc += src.get(j) * *xp.add(*col_ind.get_unchecked(j) as usize);
            j += 1;
        }
        *y.get_unchecked_mut(i - y_base) = acc;
    }
}

/// A `k`-wide row accumulator held in vector registers. Lane `v` runs
/// the independent chain `acc[v] += a * x[v]` — the vector analogue of
/// `FixedAcc<f64, K>`, lane-for-lane identical.
pub(crate) trait PanelAcc: Copy {
    const K: usize;
    /// # Safety
    /// AVX2 must be enabled in the caller (applies to all methods).
    unsafe fn zero() -> Self;
    /// # Safety
    /// `xp` must point at `K` readable doubles; AVX2 enabled.
    unsafe fn step(self, a: f64, xp: *const f64) -> Self;
    /// # Safety
    /// `yp` must point at `K` writable doubles; AVX2 enabled.
    unsafe fn store(self, yp: *mut f64);
}

#[derive(Clone, Copy)]
pub(crate) struct Acc2(__m128d);

impl PanelAcc for Acc2 {
    const K: usize = 2;
    #[inline(always)]
    unsafe fn zero() -> Self {
        Acc2(_mm_setzero_pd())
    }
    #[inline(always)]
    unsafe fn step(self, a: f64, xp: *const f64) -> Self {
        Acc2(_mm_add_pd(self.0, _mm_mul_pd(_mm_set1_pd(a), _mm_loadu_pd(xp))))
    }
    #[inline(always)]
    unsafe fn store(self, yp: *mut f64) {
        _mm_storeu_pd(yp, self.0);
    }
}

#[derive(Clone, Copy)]
pub(crate) struct Acc4(__m256d);

impl PanelAcc for Acc4 {
    const K: usize = 4;
    #[inline(always)]
    unsafe fn zero() -> Self {
        Acc4(_mm256_setzero_pd())
    }
    #[inline(always)]
    unsafe fn step(self, a: f64, xp: *const f64) -> Self {
        Acc4(_mm256_add_pd(self.0, _mm256_mul_pd(_mm256_set1_pd(a), _mm256_loadu_pd(xp))))
    }
    #[inline(always)]
    unsafe fn store(self, yp: *mut f64) {
        _mm256_storeu_pd(yp, self.0);
    }
}

#[derive(Clone, Copy)]
pub(crate) struct Acc8(__m256d, __m256d);

impl PanelAcc for Acc8 {
    const K: usize = 8;
    #[inline(always)]
    unsafe fn zero() -> Self {
        Acc8(_mm256_setzero_pd(), _mm256_setzero_pd())
    }
    #[inline(always)]
    unsafe fn step(self, a: f64, xp: *const f64) -> Self {
        let av = _mm256_set1_pd(a);
        Acc8(
            _mm256_add_pd(self.0, _mm256_mul_pd(av, _mm256_loadu_pd(xp))),
            _mm256_add_pd(self.1, _mm256_mul_pd(av, _mm256_loadu_pd(xp.add(4)))),
        )
    }
    #[inline(always)]
    unsafe fn store(self, yp: *mut f64) {
        _mm256_storeu_pd(yp, self.0);
        _mm256_storeu_pd(yp.add(4), self.1);
    }
}

/// CSR / CSR-VI row-range SpMM body for `k = A::K`. Mirrors
/// `Csr::spmm_rows_acc` / `csr_vi::kernel_mm` with the accumulator held
/// in vector registers. `#[inline(always)]` so each `#[target_feature]`
/// wrapper below compiles it with AVX2 codegen.
///
/// # Safety
/// As [`rows_k1`], with `x`/`y` row-major panels of width `A::K`.
#[inline(always)]
unsafe fn rows_panel_body<A: PanelAcc>(
    row_ptr: &[u32],
    col_ind: &[u32],
    src: ValSrc<'_>,
    row_begin: usize,
    row_end: usize,
    y_base: usize,
    x: &[f64],
    y: &mut [f64],
) {
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    for i in row_begin..row_end {
        let lo = *row_ptr.get_unchecked(i) as usize;
        let hi = *row_ptr.get_unchecked(i + 1) as usize;
        let mut acc = A::zero();
        for j in lo..hi {
            let c = *col_ind.get_unchecked(j) as usize;
            acc = acc.step(src.get(j), xp.add(c * A::K));
        }
        acc.store(yp.add((i - y_base) * A::K));
    }
}

macro_rules! rows_panel_wrapper {
    ($name:ident, $acc:ty) => {
        /// # Safety
        /// See [`rows_panel_body`].
        #[target_feature(enable = "avx2")]
        pub(crate) unsafe fn $name(
            row_ptr: &[u32],
            col_ind: &[u32],
            src: ValSrc<'_>,
            row_begin: usize,
            row_end: usize,
            y_base: usize,
            x: &[f64],
            y: &mut [f64],
        ) {
            rows_panel_body::<$acc>(row_ptr, col_ind, src, row_begin, row_end, y_base, x, y);
        }
    };
}

rows_panel_wrapper!(rows_k2, Acc2);
rows_panel_wrapper!(rows_k4, Acc4);
rows_panel_wrapper!(rows_k8, Acc8);

/// Inclusive prefix sum of four i32 deltas plus the running column:
/// lane `l` becomes `col + d0 + … + dl`. Returns the column vector and
/// the new running column (lane 3). Integer math — exact.
///
/// # Safety
/// AVX2 enabled; `col` and every prefix must fit in `i32`.
#[inline(always)]
unsafe fn prefix_cols(d: __m128i, col: usize) -> (__m128i, usize) {
    let s1 = _mm_add_epi32(d, _mm_slli_si128::<4>(d));
    let s2 = _mm_add_epi32(s1, _mm_slli_si128::<8>(s1));
    let cols = _mm_add_epi32(s2, _mm_set1_epi32(col as i32));
    (cols, _mm_extract_epi32::<3>(cols) as u32 as usize)
}

/// CSR-DU / CSR-DU-VI ctl-stream SpMV (`k = 1`). Mirrors
/// `csr_du::spmm_ctl_range` at `k = 1` exactly: same unit walk, same row
/// bookkeeping, same store points. Inside U8/U16/U32 units the column
/// deltas are decoded four at a time with a SIMD prefix sum and the four
/// products folded sequentially; `Seq` units use contiguous `x` loads.
///
/// # Safety
/// AVX2 required; `ctl[ctl_range]` must be a well-formed unit stream for
/// this matrix (same contract as the scalar kernel, which indexes with
/// the same trust), columns must stay `< x.len() <= i32::MAX + 1`, `src`
/// must cover all referenced elements, and `y` must cover
/// `[row_start - y_base, row_end - y_base)`.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn du_ctl_k1(
    ctl: &[u8],
    src: ValSrc<'_>,
    ctl_range: std::ops::Range<usize>,
    val_start: usize,
    row_wrap_base: usize,
    row_start: usize,
    row_end: usize,
    y_base: usize,
    x: &[f64],
    y: &mut [f64],
) {
    for v in &mut y[row_start - y_base..row_end - y_base] {
        *v = 0.0;
    }

    let end = ctl_range.end;
    let mut pos = ctl_range.start;
    let mut val = val_start;

    let mut row = row_wrap_base;
    let mut col = 0usize;
    let mut acc = 0.0f64;
    let mut have_row = false;
    let xp = x.as_ptr();

    while pos < end {
        let uflags = ctl[pos];
        let usize_b = ctl[pos + 1] as usize;
        pos += 2;

        if uflags & FLAG_NEW_ROW != 0 {
            if have_row {
                y[row - y_base] = acc;
            }
            let jmp_rows =
                if uflags & FLAG_ROW_JMP != 0 { read_varint(ctl, &mut pos) as usize } else { 0 };
            row = row.wrapping_add(1 + jmp_rows);
            col = 0;
            acc = 0.0;
            have_row = true;
        }
        col += read_varint(ctl, &mut pos) as usize;

        // First element of the unit.
        acc += src.get(val) * *xp.add(col);
        val += 1;
        let mut remaining = usize_b - 1;

        match UnitType::from_flags(uflags) {
            UnitType::U8 => {
                while remaining >= 4 {
                    let raw =
                        i32::from_le_bytes([ctl[pos], ctl[pos + 1], ctl[pos + 2], ctl[pos + 3]]);
                    let d = _mm_cvtepu8_epi32(_mm_cvtsi32_si128(raw));
                    let (cols, next_col) = prefix_cols(d, col);
                    let p = _mm256_mul_pd(src.get4(val), _mm256_i32gather_pd::<8>(xp, cols));
                    acc = fold4(acc, p);
                    col = next_col;
                    pos += 4;
                    val += 4;
                    remaining -= 4;
                }
                while remaining > 0 {
                    col += ctl[pos] as usize;
                    pos += 1;
                    acc += src.get(val) * *xp.add(col);
                    val += 1;
                    remaining -= 1;
                }
            }
            UnitType::U16 => {
                while remaining >= 4 {
                    let d = _mm_cvtepu16_epi32(_mm_loadl_epi64(
                        ctl.as_ptr().add(pos) as *const __m128i
                    ));
                    let (cols, next_col) = prefix_cols(d, col);
                    let p = _mm256_mul_pd(src.get4(val), _mm256_i32gather_pd::<8>(xp, cols));
                    acc = fold4(acc, p);
                    col = next_col;
                    pos += 8;
                    val += 4;
                    remaining -= 4;
                }
                while remaining > 0 {
                    col += u16::from_le_bytes([ctl[pos], ctl[pos + 1]]) as usize;
                    pos += 2;
                    acc += src.get(val) * *xp.add(col);
                    val += 1;
                    remaining -= 1;
                }
            }
            UnitType::U32 => {
                while remaining >= 4 {
                    let d = _mm_loadu_si128(ctl.as_ptr().add(pos) as *const __m128i);
                    let (cols, next_col) = prefix_cols(d, col);
                    let p = _mm256_mul_pd(src.get4(val), _mm256_i32gather_pd::<8>(xp, cols));
                    acc = fold4(acc, p);
                    col = next_col;
                    pos += 16;
                    val += 4;
                    remaining -= 4;
                }
                while remaining > 0 {
                    col +=
                        u32::from_le_bytes(ctl[pos..pos + 4].try_into().expect("4 bytes")) as usize;
                    pos += 4;
                    acc += src.get(val) * *xp.add(col);
                    val += 1;
                    remaining -= 1;
                }
            }
            UnitType::U64 => {
                // Rare (>4 GiB column jumps inside a unit); scalar walk.
                while remaining > 0 {
                    col +=
                        u64::from_le_bytes(ctl[pos..pos + 8].try_into().expect("8 bytes")) as usize;
                    pos += 8;
                    acc += src.get(val) * *xp.add(col);
                    val += 1;
                    remaining -= 1;
                }
            }
            UnitType::Seq => {
                while remaining >= 4 {
                    // Columns col+1..col+4 are consecutive: contiguous load.
                    let p = _mm256_mul_pd(src.get4(val), _mm256_loadu_pd(xp.add(col + 1)));
                    acc = fold4(acc, p);
                    col += 4;
                    val += 4;
                    remaining -= 4;
                }
                while remaining > 0 {
                    col += 1;
                    acc += src.get(val) * *xp.add(col);
                    val += 1;
                    remaining -= 1;
                }
            }
        }
    }
    if have_row {
        y[row - y_base] = acc;
    }
}

/// CSR-DU / CSR-DU-VI ctl-stream SpMM body for `k = A::K`. Mirrors
/// `csr_du::spmm_ctl_range` with the row panel held in vector registers;
/// the ctl decode itself stays scalar (at `k >= 2` the floating-point
/// panel work dominates). `#[inline(always)]` so the
/// `#[target_feature]` wrappers compile it with AVX2 codegen.
///
/// # Safety
/// As [`du_ctl_k1`], with `x`/`y` row-major panels of width `A::K`.
#[inline(always)]
unsafe fn du_ctl_panel_body<A: PanelAcc>(
    ctl: &[u8],
    src: ValSrc<'_>,
    ctl_range: std::ops::Range<usize>,
    val_start: usize,
    row_wrap_base: usize,
    row_start: usize,
    row_end: usize,
    y_base: usize,
    x: &[f64],
    y: &mut [f64],
) {
    let k = A::K;
    for v in &mut y[(row_start - y_base) * k..(row_end - y_base) * k] {
        *v = 0.0;
    }

    let end = ctl_range.end;
    let mut pos = ctl_range.start;
    let mut val = val_start;

    let mut row = row_wrap_base;
    let mut col = 0usize;
    let mut acc = A::zero();
    let mut have_row = false;
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();

    while pos < end {
        let uflags = ctl[pos];
        let usize_b = ctl[pos + 1] as usize;
        pos += 2;

        if uflags & FLAG_NEW_ROW != 0 {
            if have_row {
                acc.store(yp.add((row - y_base) * k));
            }
            let jmp_rows =
                if uflags & FLAG_ROW_JMP != 0 { read_varint(ctl, &mut pos) as usize } else { 0 };
            row = row.wrapping_add(1 + jmp_rows);
            col = 0;
            acc = A::zero();
            have_row = true;
        }
        col += read_varint(ctl, &mut pos) as usize;

        acc = acc.step(src.get(val), xp.add(col * k));
        val += 1;
        let mut remaining = usize_b - 1;

        match UnitType::from_flags(uflags) {
            UnitType::U8 => {
                while remaining > 0 {
                    col += ctl[pos] as usize;
                    pos += 1;
                    acc = acc.step(src.get(val), xp.add(col * k));
                    val += 1;
                    remaining -= 1;
                }
            }
            UnitType::U16 => {
                while remaining > 0 {
                    col += u16::from_le_bytes([ctl[pos], ctl[pos + 1]]) as usize;
                    pos += 2;
                    acc = acc.step(src.get(val), xp.add(col * k));
                    val += 1;
                    remaining -= 1;
                }
            }
            UnitType::U32 => {
                while remaining > 0 {
                    col +=
                        u32::from_le_bytes(ctl[pos..pos + 4].try_into().expect("4 bytes")) as usize;
                    pos += 4;
                    acc = acc.step(src.get(val), xp.add(col * k));
                    val += 1;
                    remaining -= 1;
                }
            }
            UnitType::U64 => {
                while remaining > 0 {
                    col +=
                        u64::from_le_bytes(ctl[pos..pos + 8].try_into().expect("8 bytes")) as usize;
                    pos += 8;
                    acc = acc.step(src.get(val), xp.add(col * k));
                    val += 1;
                    remaining -= 1;
                }
            }
            UnitType::Seq => {
                while remaining > 0 {
                    col += 1;
                    acc = acc.step(src.get(val), xp.add(col * k));
                    val += 1;
                    remaining -= 1;
                }
            }
        }
    }
    if have_row {
        acc.store(yp.add((row - y_base) * k));
    }
}

macro_rules! du_ctl_panel_wrapper {
    ($name:ident, $acc:ty) => {
        /// # Safety
        /// See [`du_ctl_panel_body`].
        #[target_feature(enable = "avx2")]
        pub(crate) unsafe fn $name(
            ctl: &[u8],
            src: ValSrc<'_>,
            ctl_range: std::ops::Range<usize>,
            val_start: usize,
            row_wrap_base: usize,
            row_start: usize,
            row_end: usize,
            y_base: usize,
            x: &[f64],
            y: &mut [f64],
        ) {
            du_ctl_panel_body::<$acc>(
                ctl,
                src,
                ctl_range,
                val_start,
                row_wrap_base,
                row_start,
                row_end,
                y_base,
                x,
                y,
            );
        }
    };
}

du_ctl_panel_wrapper!(du_ctl_k2, Acc2);
du_ctl_panel_wrapper!(du_ctl_k4, Acc4);
du_ctl_panel_wrapper!(du_ctl_k8, Acc8);
