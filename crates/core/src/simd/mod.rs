//! Runtime ISA dispatch for the hot SpMV/SpMM kernels.
//!
//! The paper's premise is that SpMV is bandwidth-bound, so decode cycles
//! are "free" — but that only holds when the decode+compute loop keeps up
//! with the memory stream. This module adds explicit AVX2 paths for the
//! four hot kernels (CSR accumulate, CSR-DU delta-unit decode, CSR-VI
//! palette gather, fixed-`k` SpMM accumulators) and a tiny dispatch enum,
//! [`Isa`], selected **once** per kernel call or plan construction — the
//! per-row loops never re-run feature detection.
//!
//! Selection policy, in priority order:
//!
//! 1. a process-wide override installed with [`force`] (the
//!    `reproduce bench --isa` flag);
//! 2. the `SPMV_ISA` environment variable (`scalar`/`avx2`/`auto`),
//!    read once and cached — the CI `simd-smoke` gate uses this;
//! 3. CPUID feature detection ([`Isa::detect`], cached).
//!
//! Requesting [`Isa::Avx2`] on a machine without AVX2 silently degrades
//! to [`Isa::Scalar`] at every dispatch site (checked against the cached
//! detection result), so no combination of overrides can execute an
//! unsupported instruction.
//!
//! # Bit-identical by construction
//!
//! Every vector path performs *the same floating-point operations in the
//! same order* as its scalar twin: multiplies are kept separate from adds
//! (no FMA contraction — the scalar kernels round twice per element, so
//! the vector kernels must too), `k`-wide panels vectorize *across* the
//! `k` independent per-lane accumulation chains, and the `k = 1` path
//! computes four products at a time but folds them into the row
//! accumulator sequentially. The differential suite
//! (`tests/simd_equivalence.rs`) pins this down with bit-pattern
//! comparisons over formats × k × threads.

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2;

use std::any::TypeId;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::error::SparseError;
use crate::index::SpIndex;
use crate::scalar::Scalar;

/// Instruction-set architecture a kernel was compiled for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Isa {
    /// Portable scalar Rust — always available.
    Scalar,
    /// x86-64 AVX2 (256-bit) intrinsics; requires CPU support.
    Avx2,
}

const CODE_SCALAR: u8 = 1;
const CODE_AVX2: u8 = 2;

/// Cached CPUID detection result (0 = not yet probed).
static DETECTED: AtomicU8 = AtomicU8::new(0);
/// Process-wide override installed by [`force`] (0 = none).
static FORCED: AtomicU8 = AtomicU8::new(0);
/// `SPMV_ISA` environment variable, read once.
static ENV_CHOICE: OnceLock<Option<Isa>> = OnceLock::new();

#[cfg(target_arch = "x86_64")]
fn detect_uncached() -> Isa {
    if std::arch::is_x86_feature_detected!("avx2") {
        Isa::Avx2
    } else {
        Isa::Scalar
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_uncached() -> Isa {
    Isa::Scalar
}

impl Isa {
    /// Best ISA the running CPU supports. Probes CPUID once and caches.
    pub fn detect() -> Isa {
        match DETECTED.load(Ordering::Relaxed) {
            CODE_SCALAR => Isa::Scalar,
            CODE_AVX2 => Isa::Avx2,
            _ => {
                let isa = detect_uncached();
                DETECTED.store(isa.code(), Ordering::Relaxed);
                isa
            }
        }
    }

    /// Whether this ISA can actually run on the current CPU.
    pub fn available(self) -> bool {
        match self {
            Isa::Scalar => true,
            Isa::Avx2 => Isa::detect() == Isa::Avx2,
        }
    }

    /// Stable lowercase name (the `kernel_isa` BENCH.json field).
    pub fn as_str(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
        }
    }

    /// Parses a concrete ISA name (`"scalar"` / `"avx2"`).
    pub fn parse(s: &str) -> Option<Isa> {
        match s {
            "scalar" => Some(Isa::Scalar),
            "avx2" => Some(Isa::Avx2),
            _ => None,
        }
    }

    fn code(self) -> u8 {
        match self {
            Isa::Scalar => CODE_SCALAR,
            Isa::Avx2 => CODE_AVX2,
        }
    }

    fn from_code(code: u8) -> Option<Isa> {
        match code {
            CODE_SCALAR => Some(Isa::Scalar),
            CODE_AVX2 => Some(Isa::Avx2),
            _ => None,
        }
    }
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Parses an ISA *choice* as accepted by `reproduce bench --isa` and the
/// `SPMV_ISA` environment variable: `"auto"` means "pick the best
/// supported ISA" (`Ok(None)`); a concrete name pins it.
pub fn parse_choice(s: &str) -> Result<Option<Isa>, String> {
    match s {
        "auto" => Ok(None),
        other => Isa::parse(other)
            .map(Some)
            .ok_or_else(|| format!("unknown ISA {other:?} (expected auto, scalar or avx2)")),
    }
}

/// Installs (or with `None` clears) a process-wide ISA override. Takes
/// precedence over `SPMV_ISA` and auto-detection. Kernels constructed or
/// called afterwards use the override; plans built earlier keep the ISA
/// they snapshotted.
pub fn force(choice: Option<Isa>) {
    FORCED.store(choice.map_or(0, Isa::code), Ordering::Relaxed);
}

/// The currently installed [`force`] override, if any.
pub fn forced() -> Option<Isa> {
    Isa::from_code(FORCED.load(Ordering::Relaxed))
}

fn env_choice() -> Option<Isa> {
    // The init closure runs once per process, so a malformed value warns
    // exactly once; explicit API paths use [`env_isa_checked`] to get the
    // typed error instead of this lenient fallback.
    *ENV_CHOICE.get_or_init(|| match std::env::var("SPMV_ISA") {
        Ok(s) => match parse_choice(s.trim()) {
            Ok(choice) => choice,
            Err(e) => {
                eprintln!("warning: ignoring SPMV_ISA: {e}; falling back to auto-detection");
                None
            }
        },
        Err(_) => None,
    })
}

/// Strict form of the `SPMV_ISA` reader for explicit API paths
/// (`collect_bench`, the service builder): re-reads the environment and
/// returns [`SparseError::InvalidArgument`] for a malformed value
/// instead of the warn-and-ignore fallback the cached [`selected`] path
/// uses. `Ok(None)` means unset or `auto`.
pub fn env_isa_checked() -> Result<Option<Isa>, SparseError> {
    match std::env::var("SPMV_ISA") {
        Ok(s) => parse_choice(s.trim())
            .map_err(|e| SparseError::InvalidArgument(format!("SPMV_ISA: {e}"))),
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(_)) => {
            Err(SparseError::InvalidArgument("SPMV_ISA is not valid unicode".into()))
        }
    }
}

/// The ISA new kernel calls and plans will use right now:
/// [`force`] override, else `SPMV_ISA`, else [`Isa::detect`] — degraded
/// to [`Isa::Scalar`] whenever the choice is not actually available.
pub fn selected() -> Isa {
    let choice = forced().or_else(env_choice).unwrap_or_else(Isa::detect);
    if choice.available() {
        choice
    } else {
        Isa::Scalar
    }
}

/// True when `isa` asks for AVX2 *and* the CPU really has it — the single
/// gate every dispatch site checks before entering an AVX2 kernel, so a
/// stale or hostile [`Isa::Avx2`] on unsupported hardware degrades to the
/// scalar path instead of executing unsupported instructions.
#[inline]
pub(crate) fn avx2_ok(isa: Isa) -> bool {
    isa == Isa::Avx2 && Isa::Avx2.available()
}

/// Reinterprets a generic value slice as `f64` when `V` *is* `f64`
/// (monomorphization-time check; the cast is then the identity).
#[inline]
pub(crate) fn as_f64s<V: Scalar>(s: &[V]) -> Option<&[f64]> {
    if TypeId::of::<V>() == TypeId::of::<f64>() {
        debug_assert_eq!(std::mem::size_of::<V>(), std::mem::size_of::<f64>());
        // Safety: V == f64 (same layout), lifetimes unchanged.
        Some(unsafe { std::slice::from_raw_parts(s.as_ptr() as *const f64, s.len()) })
    } else {
        None
    }
}

/// Mutable twin of [`as_f64s`].
#[inline]
pub(crate) fn as_f64s_mut<V: Scalar>(s: &mut [V]) -> Option<&mut [f64]> {
    if TypeId::of::<V>() == TypeId::of::<f64>() {
        // Safety: V == f64 (same layout), lifetimes unchanged.
        Some(unsafe { std::slice::from_raw_parts_mut(s.as_mut_ptr() as *mut f64, s.len()) })
    } else {
        None
    }
}

/// Reinterprets a generic index slice as `u32` when `I` *is* `u32`.
#[inline]
pub(crate) fn as_u32s<I: SpIndex>(s: &[I]) -> Option<&[u32]> {
    if TypeId::of::<I>() == TypeId::of::<u32>() {
        debug_assert_eq!(std::mem::size_of::<I>(), std::mem::size_of::<u32>());
        // Safety: I == u32 (same layout), lifetimes unchanged.
        Some(unsafe { std::slice::from_raw_parts(s.as_ptr() as *const u32, s.len()) })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_is_stable_and_available() {
        let a = Isa::detect();
        let b = Isa::detect();
        assert_eq!(a, b);
        assert!(a.available());
        assert!(Isa::Scalar.available());
    }

    #[test]
    fn parse_roundtrips_names() {
        assert_eq!(Isa::parse("scalar"), Some(Isa::Scalar));
        assert_eq!(Isa::parse("avx2"), Some(Isa::Avx2));
        assert_eq!(Isa::parse("sse9"), None);
        for isa in [Isa::Scalar, Isa::Avx2] {
            assert_eq!(Isa::parse(isa.as_str()), Some(isa));
            assert_eq!(format!("{isa}"), isa.as_str());
        }
    }

    #[test]
    fn parse_choice_accepts_auto_and_rejects_garbage() {
        assert_eq!(parse_choice("auto"), Ok(None));
        assert_eq!(parse_choice("scalar"), Ok(Some(Isa::Scalar)));
        assert_eq!(parse_choice("avx2"), Ok(Some(Isa::Avx2)));
        assert!(parse_choice("AVX2").is_err());
        assert!(parse_choice("").is_err());
    }

    #[test]
    fn force_overrides_and_clears() {
        let prev = forced();
        force(Some(Isa::Scalar));
        assert_eq!(forced(), Some(Isa::Scalar));
        assert_eq!(selected(), Isa::Scalar);
        force(prev);
        assert_eq!(forced(), prev);
    }

    #[test]
    fn selected_never_picks_unavailable_isa() {
        assert!(selected().available());
    }

    #[test]
    fn checked_env_isa_agrees_with_cached_choice_on_valid_env() {
        // CI runs the suite with SPMV_ISA unset and set to valid names;
        // either way the strict reader must succeed and agree with the
        // cached lenient one. (Malformed values are covered through the
        // pure `parse_choice` tests — mutating the environment here would
        // race other tests in this binary.)
        assert_eq!(env_isa_checked().unwrap(), env_choice());
    }

    #[test]
    fn slice_casts_specialize_on_type() {
        let v = [1.0f64, 2.0];
        assert_eq!(as_f64s(&v), Some(&v[..]));
        let w = [1.0f32, 2.0];
        assert!(as_f64s(&w).is_none());
        let i = [1u32, 2];
        assert_eq!(as_u32s(&i), Some(&i[..]));
        let j = [1u16, 2];
        assert!(as_u32s(&j).is_none());
    }
}
