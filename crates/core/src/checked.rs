//! Self-verifying SpMV: cross-check a compressed kernel against the CSR
//! baseline.
//!
//! A compressed format buys its bandwidth savings with a more intricate
//! decode path — exactly the kind of code where an encoder bug or a
//! corrupted representation produces *plausible-looking* wrong numbers
//! rather than a crash. [`CheckedSpMv`] wraps any [`SpMv`] implementation
//! together with a CSR baseline of the same matrix and, on every
//! multiplication, recomputes a sample of output rows with the baseline
//! kernel, comparing within a ULP tolerance.
//!
//! The tolerance is expressed in ULPs ([`Scalar::ulp_distance`]) rather
//! than an absolute epsilon because formats legitimately reorder the
//! per-row summation (CSC scatters along columns, JAD walks diagonals,
//! symmetric storage mirrors entries), which perturbs the result by a few
//! ULPs at most. Real corruption — a wrong value, a shifted column, a
//! dropped entry — lands whole exponents away, so even a generous default
//! tolerance of a few hundred ULPs separates the two regimes cleanly.
//!
//! One refinement: when a row nearly cancels (`|Σ a_ij·x_j| ≪ Σ|a_ij·x_j|`),
//! reordering error scales with the *summand* magnitudes, not the tiny
//! result, and the plain ULP distance explodes even though every digit the
//! data supports agrees. A difference is therefore also accepted when it is
//! within tolerance measured in ULPs of the row's L1 magnitude
//! `Σ|a_ij·x_j|` — the standard backward-error yardstick. Corruption is
//! comparable to the summands themselves, so it fails both measures.

use crate::csr::Csr;
use crate::error::SparseError;
use crate::index::SpIndex;
use crate::scalar::Scalar;
use crate::spmv::SpMv;

/// Options for [`CheckedSpMv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckOptions {
    /// Number of output rows to recompute with the baseline per call.
    /// `0` means *all* rows (full cross-check). Sampled rows are spread
    /// evenly over the row range, always including the first and last
    /// non-empty stride.
    pub sample_rows: usize,
    /// Maximum tolerated [`Scalar::ulp_distance`] between the wrapped
    /// kernel's result and the baseline's — measured directly, or (for
    /// near-cancelling rows) in ULPs of the row's L1 magnitude
    /// `Σ|a_ij·x_j|`; the smaller of the two must pass.
    pub max_ulps: u64,
}

impl Default for CheckOptions {
    fn default() -> Self {
        // 64 rows bounds the overhead on large matrices; 512 ULPs is far
        // beyond any summation-reorder effect yet ~2^50 below a single-bit
        // exponent corruption of an f64.
        CheckOptions { sample_rows: 64, max_ulps: 512 }
    }
}

/// An [`SpMv`] kernel paired with a CSR baseline for result verification.
///
/// ```
/// use spmv_core::checked::CheckedSpMv;
/// use spmv_core::csr_du::{CsrDu, DuOptions};
///
/// let csr = spmv_core::examples::paper_matrix().to_csr();
/// let du = CsrDu::from_csr(&csr, &DuOptions::default());
/// let checked = CheckedSpMv::new(&du, &csr).unwrap();
/// let x = vec![1.0; 6];
/// let mut y = vec![0.0; 6];
/// checked.spmv_verified(&x, &mut y).unwrap();
/// ```
pub struct CheckedSpMv<'a, I: SpIndex = u32, V: Scalar = f64> {
    inner: &'a dyn SpMv<V>,
    baseline: &'a Csr<I, V>,
    opts: CheckOptions,
}

impl<'a, I: SpIndex, V: Scalar> CheckedSpMv<'a, I, V> {
    /// Wraps `inner` with `baseline` as the reference kernel, using
    /// default [`CheckOptions`]. Fails with
    /// [`SparseError::DimensionMismatch`] if the two matrices do not have
    /// the same shape, or if their non-zero counts differ.
    pub fn new(inner: &'a dyn SpMv<V>, baseline: &'a Csr<I, V>) -> Result<Self, SparseError> {
        Self::with_options(inner, baseline, CheckOptions::default())
    }

    /// Like [`CheckedSpMv::new`] with explicit options.
    pub fn with_options(
        inner: &'a dyn SpMv<V>,
        baseline: &'a Csr<I, V>,
        opts: CheckOptions,
    ) -> Result<Self, SparseError> {
        if inner.nrows() != baseline.nrows() || inner.ncols() != baseline.ncols() {
            return Err(SparseError::DimensionMismatch(format!(
                "checked {} kernel is {}x{} but baseline CSR is {}x{}",
                inner.kind(),
                inner.nrows(),
                inner.ncols(),
                baseline.nrows(),
                baseline.ncols()
            )));
        }
        Ok(CheckedSpMv { inner, baseline, opts })
    }

    /// The wrapped kernel.
    pub fn inner(&self) -> &dyn SpMv<V> {
        self.inner
    }

    /// Computes `y = A·x` with the wrapped kernel, then recomputes a
    /// sample of rows with the CSR baseline and compares within the ULP
    /// tolerance. Returns [`SparseError::VerificationFailed`] naming the
    /// first out-of-tolerance row.
    pub fn spmv_verified(&self, x: &[V], y: &mut [V]) -> Result<(), SparseError> {
        self.inner.try_spmv(x, y)?;
        self.verify_against(x, y)
    }

    /// Verifies an already-computed result vector `y` against the
    /// baseline on the sampled rows (the checking half of
    /// [`CheckedSpMv::spmv_verified`]).
    pub fn verify_against(&self, x: &[V], y: &[V]) -> Result<(), SparseError> {
        let nrows = self.baseline.nrows();
        if nrows == 0 {
            return Ok(());
        }
        let samples =
            if self.opts.sample_rows == 0 { nrows } else { self.opts.sample_rows.min(nrows) };
        let mut y_row = [V::zero()];
        for s in 0..samples {
            // Even spread including row 0; integer arithmetic keeps the
            // selection deterministic across platforms.
            let row = if samples == nrows { s } else { s * nrows / samples };
            self.baseline.spmv_rows_local(row, row + 1, x, &mut y_row);
            let dist = y[row].ulp_distance(y_row[0]);
            if dist > self.opts.max_ulps {
                // Cancellation case: re-measure the difference in ULPs of
                // the row's L1 magnitude Σ|a_ij·x_j| (see module docs).
                let mut l1 = V::zero();
                for (c, v) in self.baseline.row_iter(row) {
                    l1 += (v * x[c]).abs();
                }
                let scaled_dist = l1.ulp_distance(l1 + (y[row] - y_row[0]).abs());
                if scaled_dist > self.opts.max_ulps {
                    return Err(SparseError::VerificationFailed {
                        row,
                        detail: format!(
                            "{} kernel produced {:?}, CSR baseline {:?} ({dist} ULPs apart, \
                             {scaled_dist} ULPs of the row magnitude {:?}; tolerance {})",
                            self.inner.kind(),
                            y[row],
                            y_row[0],
                            l1,
                            self.opts.max_ulps
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr_du::{CsrDu, DuOptions};
    use crate::csr_vi::CsrVi;
    use crate::examples::paper_matrix;

    fn x6() -> Vec<f64> {
        (0..6).map(|i| 0.7 * i as f64 - 1.3).collect()
    }

    #[test]
    fn accepts_correct_compressed_kernels() {
        let csr = paper_matrix().to_csr();
        let du = CsrDu::from_csr(&csr, &DuOptions::default());
        let vi = CsrVi::from_csr(&csr);
        let kernels: [&dyn SpMv<f64>; 2] = [&du, &vi];
        for k in kernels {
            let checked = CheckedSpMv::new(k, &csr).unwrap();
            let mut y = vec![0.0; 6];
            checked.spmv_verified(&x6(), &mut y).unwrap();
            let mut y_ref = vec![0.0; 6];
            csr.spmv(&x6(), &mut y_ref);
            assert_eq!(y, y_ref);
        }
    }

    #[test]
    fn rejects_corrupted_values() {
        let csr = paper_matrix().to_csr();
        // Encode a perturbed copy: one value differs from the baseline.
        let mut perturbed = paper_matrix().to_csr();
        perturbed.values_mut()[3] += 0.5;
        let du = CsrDu::from_csr(&perturbed, &DuOptions::default());
        let checked = CheckedSpMv::new(&du, &csr).unwrap();
        let mut y = vec![0.0; 6];
        let err = checked.spmv_verified(&x6(), &mut y).unwrap_err();
        assert!(matches!(err, SparseError::VerificationFailed { .. }), "{err}");
    }

    #[test]
    fn full_check_catches_single_row_corruption() {
        // Sampled checks can miss a row; sample_rows = 0 must not.
        let csr = paper_matrix().to_csr();
        let mut vi_src = paper_matrix().to_csr();
        vi_src.values_mut()[10] *= -1.0;
        let vi = CsrVi::from_csr(&vi_src);
        let opts = CheckOptions { sample_rows: 0, ..CheckOptions::default() };
        let checked = CheckedSpMv::with_options(&vi, &csr, opts).unwrap();
        let mut y = vec![0.0; 6];
        assert!(checked.spmv_verified(&x6(), &mut y).is_err());
    }

    #[test]
    fn cancellation_rows_use_row_magnitude_tolerance() {
        // Row 0 sums 1e8 + (-1e8) + 1e-8: the result is ~16 orders of
        // magnitude below the summands, so an absolute error that is
        // harmless reorder noise (a few ULPs of 1e8) is astronomically
        // many ULPs of the result itself.
        let mut coo = crate::Coo::<f64>::new(1, 3);
        coo.push(0, 0, 1e8).unwrap();
        coo.push(0, 1, -1e8).unwrap();
        coo.push(0, 2, 1e-8).unwrap();
        let csr = coo.to_csr();
        let checked = CheckedSpMv::new(&csr, &csr).unwrap();
        let x = vec![1.0; 3];
        let mut y = vec![0.0; 1];
        csr.spmv(&x, &mut y);

        // Reorder-scale error: fine under the L1-scaled measure...
        let noisy = [y[0] + 1e-9];
        assert!(y[0].ulp_distance(noisy[0]) > 512, "premise: direct ULPs blow up");
        checked.verify_against(&x, &noisy).unwrap();
        // ...but corruption comparable to the summands still fails.
        let corrupt = [y[0] + 1.0];
        assert!(checked.verify_against(&x, &corrupt).is_err());
    }

    #[test]
    fn rejects_shape_mismatch_at_construction() {
        let csr = paper_matrix().to_csr();
        let other = crate::Coo::<f64>::new(5, 6).to_csr();
        let du = CsrDu::from_csr(&csr, &DuOptions::default());
        assert!(matches!(CheckedSpMv::new(&du, &other), Err(SparseError::DimensionMismatch(_))));
    }

    #[test]
    fn empty_matrix_verifies() {
        let csr = crate::Coo::<f64>::new(0, 4).to_csr();
        let du = CsrDu::from_csr(&csr, &DuOptions::default());
        let checked = CheckedSpMv::new(&du, &csr).unwrap();
        let mut y = vec![];
        checked.spmv_verified(&[0.0; 4], &mut y).unwrap();
    }
}
