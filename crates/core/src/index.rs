//! The [`SpIndex`] abstraction over index storage widths.
//!
//! The paper's baseline CSR uses 32-bit indices; it also cites Williams et
//! al.'s use of 16-bit indices where matrix dimensions permit, and notes
//! that growing memories will eventually force 64-bit indices (making index
//! compression *more* attractive). Formats in this crate are generic over
//! the index width via this trait.

use crate::error::{Result, SparseError};
use std::fmt::Debug;
use std::hash::Hash;

/// Trait for unsigned integer types usable as stored row/column indices.
pub trait SpIndex: Copy + Eq + Ord + Hash + Debug + Send + Sync + Default + 'static {
    /// Size of one stored index in bytes, as it appears in the working set.
    const BYTES: usize;
    /// Number of bits.
    const BITS: u32;
    /// Largest representable index.
    const MAX_USIZE: usize;

    /// Widen to `usize` (always lossless).
    fn index(self) -> usize;
    /// Narrow from `usize`; returns an error if the value does not fit.
    fn from_usize(v: usize) -> Result<Self>;
    /// Narrow from `usize` without checking. Caller must guarantee fit;
    /// in debug builds this still panics on overflow.
    fn from_usize_unchecked(v: usize) -> Self;
}

macro_rules! impl_sp_index {
    ($t:ty) => {
        impl SpIndex for $t {
            const BYTES: usize = std::mem::size_of::<$t>();
            const BITS: u32 = <$t>::BITS;
            const MAX_USIZE: usize = <$t>::MAX as usize;

            #[inline(always)]
            fn index(self) -> usize {
                self as usize
            }

            #[inline]
            fn from_usize(v: usize) -> Result<Self> {
                if v <= Self::MAX_USIZE {
                    Ok(v as $t)
                } else {
                    Err(SparseError::IndexOverflow { value: v, width_bits: Self::BITS })
                }
            }

            #[inline(always)]
            fn from_usize_unchecked(v: usize) -> Self {
                debug_assert!(v <= Self::MAX_USIZE);
                v as $t
            }
        }
    };
}

impl_sp_index!(u16);
impl_sp_index!(u32);
impl_sp_index!(u64);
impl_sp_index!(usize);

/// Picks the narrowest of `u8`-granular widths (1, 2, 4 or 8 bytes) able to
/// represent `max_value`. Used by CSR-VI to size the value-index array and
/// by CSR-DU to classify delta units.
#[inline]
pub fn narrowest_width_bytes(max_value: usize) -> usize {
    if max_value <= u8::MAX as usize {
        1
    } else if max_value <= u16::MAX as usize {
        2
    } else if max_value <= u32::MAX as usize {
        4
    } else {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widen_narrow_roundtrip() {
        assert_eq!(<u16 as SpIndex>::from_usize(65535).unwrap().index(), 65535);
        assert_eq!(<u32 as SpIndex>::from_usize(1 << 20).unwrap().index(), 1 << 20);
        assert_eq!(<u64 as SpIndex>::from_usize(usize::MAX).unwrap().index(), usize::MAX);
    }

    #[test]
    fn narrow_overflow_is_reported() {
        let err = <u16 as SpIndex>::from_usize(65536).unwrap_err();
        assert_eq!(err, SparseError::IndexOverflow { value: 65536, width_bits: 16 });
    }

    #[test]
    fn width_selection_boundaries() {
        assert_eq!(narrowest_width_bytes(0), 1);
        assert_eq!(narrowest_width_bytes(255), 1);
        assert_eq!(narrowest_width_bytes(256), 2);
        assert_eq!(narrowest_width_bytes(65535), 2);
        assert_eq!(narrowest_width_bytes(65536), 4);
        assert_eq!(narrowest_width_bytes(u32::MAX as usize), 4);
        assert_eq!(narrowest_width_bytes(u32::MAX as usize + 1), 8);
    }

    #[test]
    fn bytes_constants() {
        assert_eq!(<u16 as SpIndex>::BYTES, 2);
        assert_eq!(<u32 as SpIndex>::BYTES, 4);
        assert_eq!(<u64 as SpIndex>::BYTES, 8);
    }
}
