//! CSR-DU unit tests, including the paper's Table I worked example.

use super::*;
use crate::coo::Coo;
use crate::examples::paper_matrix;
use crate::spmv::SpMv;

fn du_default(coo: &Coo<f64>) -> CsrDu<f64> {
    CsrDu::from_csr(&coo.to_csr(), &DuOptions::default())
}

/// Table I of the paper: the ctl structure for the Fig. 1 matrix consists of
/// six u8 units, all starting a new row, with the listed sizes, jumps and
/// delta arrays.
#[test]
fn paper_table1() {
    let du = du_default(&paper_matrix());
    assert_eq!(du.units(), 6);

    let cursor = du.cursor();
    let units: Vec<Unit> = du.cursor().collect();
    // (usize, ujmp-as-first-col, ucis deltas) from Table I:
    let expected: [(usize, usize, &[usize]); 6] = [
        (2, 0, &[1]),
        (3, 1, &[2, 2]),
        (1, 2, &[]),
        (3, 2, &[2, 1]),
        (3, 0, &[3, 1]),
        (4, 0, &[2, 1, 2]),
    ];
    for (i, (unit, (len, jmp, deltas))) in units.iter().zip(expected.iter()).enumerate() {
        assert_eq!(unit.utype, UnitType::U8, "unit {i} type");
        assert!(unit.new_row, "unit {i} starts a row");
        assert_eq!(unit.row, i, "unit {i} row");
        assert_eq!(unit.len, *len, "unit {i} usize");
        assert_eq!(unit.first_col, *jmp, "unit {i} ujmp (row-start => absolute col)");
        let cols = cursor.unit_cols(unit);
        let got_deltas: Vec<usize> = cols.windows(2).map(|w| w[1] - w[0]).collect();
        assert_eq!(got_deltas, *deltas, "unit {i} ucis");
    }
}

#[test]
fn roundtrip_paper_matrix() {
    let coo = paper_matrix();
    let csr = coo.to_csr();
    let du = CsrDu::from_csr(&csr, &DuOptions::default());
    assert_eq!(du.to_csr().unwrap(), csr);
}

#[test]
fn spmv_matches_csr_bit_exact() {
    let coo = paper_matrix();
    let csr = coo.to_csr();
    let du = du_default(&coo);
    let x: Vec<f64> = (0..6).map(|i| (i as f64) * 0.7 - 1.3).collect();
    let mut y_csr = vec![0.0; 6];
    let mut y_du = vec![7.7; 6]; // y is fully overwritten
    csr.spmv(&x, &mut y_csr);
    du.spmv(&x, &mut y_du);
    assert_eq!(y_du, y_csr);
}

#[test]
fn empty_rows_leading_middle_trailing() {
    // Rows 0-1 empty, row 2 has entries, rows 3-4 empty, row 5 entry,
    // rows 6-7 empty (trailing).
    let coo = Coo::from_triplets(8, 4, vec![(2, 1, 1.0), (2, 3, 2.0), (5, 0, 3.0)]).unwrap();
    let du = du_default(&coo);
    assert_eq!(du.to_csr().unwrap(), coo.to_csr());

    let x = vec![1.0; 4];
    let mut y = vec![9.0; 8];
    let mut y_ref = vec![0.0; 8];
    du.spmv(&x, &mut y);
    coo.spmv_reference(&x, &mut y_ref);
    assert_eq!(y, y_ref);
}

#[test]
fn entirely_empty_matrix() {
    let coo: Coo<f64> = Coo::new(5, 5);
    let du = du_default(&coo);
    assert_eq!(du.units(), 0);
    assert_eq!(du.ctl().len(), 0);
    let mut y = vec![3.0; 5];
    du.spmv(&[1.0; 5], &mut y);
    assert_eq!(y, vec![0.0; 5]);
}

#[test]
fn long_row_spans_multiple_units() {
    // 600 non-zeros in one row forces ceil(600/255) = 3 units; only the
    // first starts the row.
    let coo = Coo::from_triplets(1, 1200, (0..600).map(|i| (0usize, 2 * i, 1.0))).unwrap();
    let du = du_default(&coo);
    let units: Vec<Unit> = du.cursor().collect();
    assert_eq!(units.len(), 3);
    assert!(units[0].new_row);
    assert!(!units[1].new_row && !units[2].new_row);
    assert_eq!(units.iter().map(|u| u.len).sum::<usize>(), 600);
    assert!(units.iter().all(|u| u.len <= 255));
    assert_eq!(du.to_csr().unwrap(), coo.to_csr());
}

#[test]
fn wide_deltas_use_wider_units() {
    // Deltas of 300 need u16; deltas of 100_000 need u32.
    let cols: Vec<usize> = (0..20).map(|i| i * 300).collect();
    let coo = Coo::from_triplets(1, 6000, cols.iter().map(|&c| (0usize, c, 1.0))).unwrap();
    let du = du_default(&coo);
    let stats = du.stats();
    assert!(stats.nnz_by_type[UnitType::U16 as usize] > 0);
    assert_eq!(du.to_csr().unwrap(), coo.to_csr());

    let cols: Vec<usize> = (0..10).map(|i| i * 100_000).collect();
    let coo = Coo::from_triplets(1, 1_000_000, cols.iter().map(|&c| (0usize, c, 1.0))).unwrap();
    let du = du_default(&coo);
    assert!(du.stats().nnz_by_type[UnitType::U32 as usize] > 0);
    assert_eq!(du.to_csr().unwrap(), coo.to_csr());
}

#[test]
fn mixed_width_splits_units() {
    // A long run of small deltas followed by a big jump then small again:
    // the big jump should start a new unit (absorbed into its ujmp varint),
    // keeping both neighbouring units u8.
    let mut cols: Vec<usize> = (0..50).collect();
    cols.extend((0..50).map(|i| 10_000 + i));
    let coo = Coo::from_triplets(1, 20_000, cols.iter().map(|&c| (0usize, c, 1.0))).unwrap();
    let du = du_default(&coo);
    let stats = du.stats();
    assert_eq!(stats.nnz, 100);
    assert_eq!(
        stats.nnz_by_type[UnitType::U8 as usize],
        100,
        "big jump must be absorbed by a unit header, not widen deltas: {stats:?}"
    );
    assert_eq!(du.to_csr().unwrap(), coo.to_csr());
}

#[test]
fn seq_units_detected_when_enabled() {
    // A fully dense row: with seq enabled it should use Seq units and
    // store no delta bytes for them.
    let coo = Coo::from_triplets(1, 100, (0..100).map(|c| (0usize, c, 1.0))).unwrap();
    let plain = CsrDu::from_csr(&coo.to_csr(), &DuOptions::default());
    let seq = CsrDu::from_csr(&coo.to_csr(), &DuOptions::with_seq());
    assert!(seq.ctl().len() < plain.ctl().len());
    let stats = seq.stats();
    assert!(stats.nnz_by_type[UnitType::Seq as usize] >= 99 - 1);
    assert_eq!(seq.to_csr().unwrap(), coo.to_csr());

    let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
    let mut y0 = vec![0.0; 1];
    let mut y1 = vec![0.0; 1];
    plain.spmv(&x, &mut y0);
    seq.spmv(&x, &mut y1);
    assert_eq!(y0, y1);
}

#[test]
fn size_reduction_on_regular_matrix() {
    // A banded matrix compresses col_ind from 4 bytes/nnz to ~1.
    let n = 2000usize;
    let mut triplets = Vec::new();
    for i in 0..n {
        for d in 0..5usize {
            let j = i + d;
            if j < n {
                triplets.push((i, j, 1.0 + d as f64));
            }
        }
    }
    let coo = Coo::from_triplets(n, n, triplets).unwrap();
    let du = du_default(&coo);
    let report = du.size_report();
    assert!(report.reduction() > 0.15, "expected >15% total reduction, got {}", report.reduction());
    let stats = du.stats();
    assert!(stats.ctl_bytes_per_nnz() < 2.0, "ctl bytes/nnz = {}", stats.ctl_bytes_per_nnz());
    assert!(stats.index_compression_ratio() > 2.0);
}

#[test]
fn splits_partition_everything_exactly_once() {
    let coo = paper_matrix();
    let du = du_default(&coo);
    for nparts in 1..=8 {
        let splits = du.splits(nparts);
        assert!(!splits.is_empty() && splits.len() <= nparts);
        // Rows covered contiguously from 0 to nrows.
        assert_eq!(splits[0].row_start, 0);
        assert_eq!(splits.last().unwrap().row_end, du.nrows());
        for w in splits.windows(2) {
            assert_eq!(w[0].row_end, w[1].row_start);
            assert_eq!(w[0].ctl_range.end, w[1].ctl_range.start);
        }
        assert_eq!(splits.iter().map(|s| s.nnz).sum::<usize>(), du.nnz());
    }
}

#[test]
fn spmv_via_splits_matches_serial() {
    // Matrix with empty rows at awkward positions plus a long row.
    let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
    for i in 0..40 {
        if i % 7 == 3 {
            continue; // empty row
        }
        for j in 0..(1 + (i * 13) % 17) {
            triplets.push((i, (j * 31 + i) % 500, (i + j) as f64 * 0.25 + 1.0));
        }
    }
    for j in 0..300 {
        triplets.push((40, j * 3 % 900, 0.5));
    }
    let mut coo = Coo::from_triplets(41, 1000, triplets).unwrap();
    coo.canonicalize();
    let du = du_default(&coo);

    let x: Vec<f64> = (0..1000).map(|i| ((i % 13) as f64) - 6.0).collect();
    let mut y_full = vec![0.0; 41];
    du.spmv(&x, &mut y_full);

    for nparts in [1, 2, 3, 5, 8] {
        let mut y_parts = vec![42.0; 41];
        for split in du.splits(nparts) {
            du.spmv_split(&split, &x, &mut y_parts);
        }
        assert_eq!(y_parts, y_full, "nparts={nparts}");
    }
}

#[test]
fn split_nnz_is_balanced() {
    // 10k nnz spread over 1000 rows; 4 parts should each get ~2500.
    let coo = Coo::from_triplets(1000, 1000, (0..10_000).map(|k| (k / 10, (k * 97) % 1000, 1.0)))
        .unwrap();
    let mut c = coo.clone();
    c.canonicalize();
    let du = du_default(&c);
    let splits = du.splits(4);
    assert_eq!(splits.len(), 4);
    for s in &splits {
        let frac = s.nnz as f64 / du.nnz() as f64;
        assert!((frac - 0.25).abs() < 0.05, "unbalanced split: {frac}");
    }
}

#[test]
fn options_validation() {
    let coo = paper_matrix();
    let csr = coo.to_csr();
    // max_unit smaller than rows forces many units but stays correct.
    let opts = DuOptions { max_unit: 2, ..Default::default() };
    let du = CsrDu::from_csr(&csr, &opts);
    assert!(du.units() > 6);
    assert_eq!(du.to_csr().unwrap(), csr);
}

#[test]
#[should_panic(expected = "max_unit")]
fn zero_max_unit_panics() {
    let csr = paper_matrix().to_csr();
    let _ = CsrDu::from_csr(&csr, &DuOptions { max_unit: 0, ..Default::default() });
}

#[test]
fn single_element_matrix() {
    let coo = Coo::from_triplets(1, 1, vec![(0, 0, 2.5)]).unwrap();
    let du = du_default(&coo);
    assert_eq!(du.units(), 1);
    let mut y = vec![0.0];
    du.spmv(&[2.0], &mut y);
    assert_eq!(y, vec![5.0]);
}

#[test]
fn f32_values_supported() {
    let coo = Coo::<f32>::from_triplets(2, 2, vec![(0, 1, 1.5f32), (1, 0, 2.5)]).unwrap();
    let csr = coo.to_csr_with_index::<u32>().unwrap();
    let du = CsrDu::from_csr(&csr, &DuOptions::default());
    let mut y = vec![0.0f32; 2];
    du.spmv(&[2.0, 4.0], &mut y);
    assert_eq!(y, vec![6.0, 5.0]);
}

#[test]
fn unit_type_flag_roundtrip() {
    for t in [UnitType::U8, UnitType::U16, UnitType::U32, UnitType::U64, UnitType::Seq] {
        assert_eq!(UnitType::from_flags(t as u8), t);
        assert_eq!(UnitType::from_flags(t as u8 | FLAG_NEW_ROW | FLAG_ROW_JMP), t);
    }
}

#[test]
fn stats_totals_consistent() {
    let du = du_default(&paper_matrix());
    let s = du.stats();
    assert_eq!(s.units, du.units());
    assert_eq!(s.nnz, du.nnz());
    assert_eq!(s.units_by_type.iter().sum::<usize>(), s.units);
    assert_eq!(s.nnz_by_type.iter().sum::<usize>(), s.nnz);
    assert!((s.avg_unit_len() - 16.0 / 6.0).abs() < 1e-12);
    assert_eq!(s.u8_fraction(), 1.0);
}
