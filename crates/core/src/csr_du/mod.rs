//! CSR-DU ("CSR Delta Unit") — the paper's index-compression format (§IV).
//!
//! The matrix is logically divided into *units*: runs of non-zeros inside a
//! single row. All indexing information is serialized into one byte stream,
//! `ctl`, replacing both `row_ptr` and `col_ind`. Each unit is encoded as
//!
//! ```text
//! uflags (1 byte) | usize (1 byte) | [urjmp varint] | ujmp varint | ucis
//! ```
//!
//! * `uflags` holds the unit *type* (the storage width of the delta values:
//!   1, 2, 4 or 8 bytes, or a sequential run) plus a `NR` flag marking the
//!   start of a new row and an `RJMP` flag marking a jump over empty rows.
//! * `usize` is the number of non-zeros covered by the unit (1..=255).
//! * `urjmp` (present iff `RJMP`) is the number of *extra* rows to advance —
//!   the paper's format cannot express empty rows; this varint is our
//!   documented extension for them.
//! * `ujmp` is the column distance of the unit's first non-zero from the
//!   current column position (which resets to 0 at a new row, so for
//!   row-starting units it is the absolute first column).
//! * `ucis` holds the remaining `usize - 1` column deltas, each stored in
//!   the unit's width (little-endian). Sequential units (`SEQ`, an optional
//!   encoder feature for runs of fully-dense neighbours) store no `ucis`
//!   bytes at all.
//!
//! During SpMV the byte stream is decoded with a per-type inner loop
//! (`match` on the unit type, then a tight loop over same-width deltas),
//! which keeps branches predictable — the coarse-grain property the paper
//! contrasts against DCSR's per-element command decoding.
//!
//! The numerical values stay in a plain `values` array exactly as in CSR.

mod decode;
mod encode;
mod spmv;
mod stats;
mod validate;

pub use decode::{DuCursor, Unit};
pub use encode::DuOptions;
pub use stats::DuStats;

pub(crate) use spmv::{spmm_ctl_range, spmv_ctl_range};

use crate::csr::Csr;
use crate::error::Result;
use crate::index::SpIndex;
use crate::scalar::Scalar;
use crate::spmv::{FormatKind, SpMv};
use crate::stats::SizeReport;

/// Bit in `uflags` marking that the unit starts a new row.
pub const FLAG_NEW_ROW: u8 = 0x80;
/// Bit in `uflags` marking that a varint row-jump follows (empty rows).
pub const FLAG_ROW_JMP: u8 = 0x40;
/// Mask extracting the unit type from `uflags`.
pub const TYPE_MASK: u8 = 0x3f;

/// Storage width class of a unit's delta values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum UnitType {
    /// Column deltas stored as `u8`.
    U8 = 0,
    /// Column deltas stored as `u16` (little-endian).
    U16 = 1,
    /// Column deltas stored as `u32` (little-endian).
    U32 = 2,
    /// Column deltas stored as `u64` (little-endian).
    U64 = 3,
    /// All deltas are exactly 1 (a dense horizontal run); nothing stored.
    Seq = 4,
}

impl UnitType {
    /// Bytes per stored delta.
    pub fn delta_bytes(self) -> usize {
        match self {
            UnitType::U8 => 1,
            UnitType::U16 => 2,
            UnitType::U32 => 4,
            UnitType::U64 => 8,
            UnitType::Seq => 0,
        }
    }

    /// Narrowest non-sequential type able to store `delta`.
    pub fn for_delta(delta: usize) -> UnitType {
        match crate::index::narrowest_width_bytes(delta) {
            1 => UnitType::U8,
            2 => UnitType::U16,
            4 => UnitType::U32,
            _ => UnitType::U64,
        }
    }

    /// Decodes the type bits of a `uflags` byte.
    pub fn from_flags(uflags: u8) -> UnitType {
        match uflags & TYPE_MASK {
            0 => UnitType::U8,
            1 => UnitType::U16,
            2 => UnitType::U32,
            3 => UnitType::U64,
            4 => UnitType::Seq,
            t => panic!("corrupt ctl stream: unknown unit type {t}"),
        }
    }
}

/// A sparse matrix in CSR-DU format.
///
/// Construct with [`CsrDu::from_csr`]. The stored representation is exactly
/// the `ctl` byte stream plus the `values` array; everything else is
/// recomputed on demand.
///
/// ```
/// use spmv_core::csr_du::{CsrDu, DuOptions};
/// use spmv_core::SpMv;
///
/// let csr = spmv_core::examples::paper_matrix().to_csr();
/// let du = CsrDu::from_csr(&csr, &DuOptions::default());
/// // Table I of the paper: six units, 28 ctl bytes vs 92 CSR index bytes.
/// assert_eq!(du.units(), 6);
/// assert!(du.ctl().len() < csr.nnz() * 4);
/// // Lossless and bit-identical in SpMV:
/// assert_eq!(du.to_csr().unwrap(), csr);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrDu<V: Scalar = f64> {
    nrows: usize,
    ncols: usize,
    nnz: usize,
    ctl: Vec<u8>,
    values: Vec<V>,
    units: usize,
}

impl<V: Scalar> CsrDu<V> {
    /// Encodes a CSR matrix into CSR-DU. The construction is `O(nnz)`: one
    /// scan of the matrix, exactly as the paper requires (§IV).
    pub fn from_csr<I: SpIndex>(csr: &Csr<I, V>, opts: &DuOptions) -> CsrDu<V> {
        encode::encode(csr, opts)
    }

    /// Rebuilds a CSR-DU matrix from an *untrusted* ctl stream and value
    /// array (e.g. a deserialized container), validating the stream with
    /// full bounds checks and cross-checking the non-zero count.
    pub fn from_parts_checked(
        nrows: usize,
        ncols: usize,
        ctl: Vec<u8>,
        values: Vec<V>,
    ) -> crate::error::Result<CsrDu<V>> {
        let (nnz, units) = validate::validate_ctl(&ctl, nrows.max(1), ncols.max(1))?;
        if nnz != values.len() {
            return Err(crate::error::SparseError::InvalidFormat(format!(
                "ctl stream covers {nnz} non-zeros but {} values supplied",
                values.len()
            )));
        }
        Ok(CsrDu { nrows, ncols, nnz, ctl, values, units })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The control byte stream holding all indexing information.
    pub fn ctl(&self) -> &[u8] {
        &self.ctl
    }

    /// Drops the value array, keeping only structure (used by the combined
    /// CSR-DU-VI format, which stores values separately).
    /// Re-walks the ctl stream with full bounds checks, returning
    /// `(nnz, units)`. Shared by [`SpMv::validate`] here and in the
    /// combined DU-VI format, whose inner `CsrDu` carries no values.
    pub(crate) fn validate_ctl_stream(&self) -> Result<(usize, usize)> {
        validate::validate_ctl(&self.ctl, self.nrows.max(1), self.ncols.max(1))
    }

    pub(crate) fn without_values(mut self) -> CsrDu<V> {
        self.values = Vec::new();
        self
    }

    /// Re-attaches a value array (inverse of [`CsrDu::without_values`]).
    pub(crate) fn with_values(mut self, values: Vec<V>) -> CsrDu<V> {
        debug_assert_eq!(values.len(), self.nnz);
        self.values = values;
        self
    }

    /// The value array (identical content to CSR's).
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// Number of encoded units.
    pub fn units(&self) -> usize {
        self.units
    }

    /// Decoding cursor over the units (used by tests, stats and the
    /// partitioner).
    pub fn cursor(&self) -> DuCursor<'_> {
        DuCursor::new(&self.ctl)
    }

    /// Reconstructs the CSR form; the round-trip is lossless.
    pub fn to_csr(&self) -> Result<Csr<u32, V>> {
        decode::to_csr(self)
    }

    /// Bytes streamed per SpMV: the ctl stream plus the values.
    pub fn size_bytes(&self) -> usize {
        self.ctl.len() + self.nnz * V::BYTES
    }

    /// Size comparison against the `u32`-index CSR baseline, as printed on
    /// the bars of the paper's Fig. 7.
    pub fn size_report(&self) -> SizeReport {
        SizeReport {
            csr_bytes: self.nnz() * (4 + V::BYTES) + (self.nrows + 1) * 4,
            compressed_bytes: self.size_bytes(),
        }
    }

    /// Per-unit-type statistics (delta-width histogram etc.).
    pub fn stats(&self) -> DuStats {
        stats::compute(self)
    }

    /// Splits the matrix into `nparts` contiguous row blocks with
    /// approximately equal non-zero counts, for the row-partitioned
    /// multithreaded kernel (§II-C). Cut points always fall on row-starting
    /// units. Returns at most `nparts` splits (fewer for tiny matrices).
    pub fn splits(&self, nparts: usize) -> Vec<DuSplit> {
        decode::splits(self, nparts)
    }

    /// SpMV over one split produced by [`CsrDu::splits`], writing only
    /// `y[split.row_start..split.row_end]` (zeroing it first). `y` is the
    /// full-length output vector.
    pub fn spmv_split(&self, split: &DuSplit, x: &[V], y: &mut [V]) {
        spmv::spmv_range(
            self,
            crate::simd::selected(),
            split.ctl_range.clone(),
            split.val_start,
            split.row_wrap_base,
            split.row_start,
            split.row_end,
            0,
            x,
            y,
        );
    }

    /// Like [`CsrDu::spmv_split`], but `y_local` covers only the split's
    /// own rows (`y_local.len() == row_end - row_start`). This is the
    /// entry point for parallel drivers that hand each thread a disjoint
    /// sub-slice of `y`.
    pub fn spmv_split_local(&self, split: &DuSplit, x: &[V], y_local: &mut [V]) {
        self.spmv_split_local_isa(crate::simd::selected(), split, x, y_local);
    }

    /// [`CsrDu::spmv_split_local`] with an explicit, pre-selected
    /// [`crate::simd::Isa`] — for parallel plans that snapshot the ISA at
    /// construction. An unavailable ISA degrades to the scalar decode.
    pub fn spmv_split_local_isa(
        &self,
        isa: crate::simd::Isa,
        split: &DuSplit,
        x: &[V],
        y_local: &mut [V],
    ) {
        debug_assert_eq!(y_local.len(), split.row_end - split.row_start);
        spmv::spmv_range(
            self,
            isa,
            split.ctl_range.clone(),
            split.val_start,
            split.row_wrap_base,
            split.row_start,
            split.row_end,
            split.row_start,
            x,
            y_local,
        );
    }

    /// SpMM over one split: the multi-vector analogue of
    /// [`CsrDu::spmv_split`]. `x`/`y` are full-size row-major panels
    /// (`ncols × k` / `nrows × k`); only the split's own row panels are
    /// written (zeroed first). Each ctl unit is decoded once and its
    /// values broadcast across the `k`-wide accumulator.
    pub fn spmm_split(&self, split: &DuSplit, x: &[V], k: usize, y: &mut [V]) {
        spmv::spmm_range(
            self,
            crate::simd::selected(),
            split.ctl_range.clone(),
            split.val_start,
            split.row_wrap_base,
            split.row_start,
            split.row_end,
            0,
            x,
            k,
            y,
        );
    }

    /// Like [`CsrDu::spmm_split`], but `y_local` covers only the split's
    /// own row panels (`y_local.len() == (row_end - row_start) * k`) —
    /// the entry point for parallel drivers handing each thread a
    /// disjoint sub-slice of `y`.
    pub fn spmm_split_local(&self, split: &DuSplit, x: &[V], k: usize, y_local: &mut [V]) {
        self.spmm_split_local_isa(crate::simd::selected(), split, x, k, y_local);
    }

    /// [`CsrDu::spmm_split_local`] with an explicit, pre-selected
    /// [`crate::simd::Isa`] (see [`CsrDu::spmv_split_local_isa`]).
    pub fn spmm_split_local_isa(
        &self,
        isa: crate::simd::Isa,
        split: &DuSplit,
        x: &[V],
        k: usize,
        y_local: &mut [V],
    ) {
        debug_assert_eq!(y_local.len(), (split.row_end - split.row_start) * k);
        spmv::spmm_range(
            self,
            isa,
            split.ctl_range.clone(),
            split.val_start,
            split.row_wrap_base,
            split.row_start,
            split.row_end,
            split.row_start,
            x,
            k,
            y_local,
        );
    }
}

impl<V: Scalar> SpMv<V> for CsrDu<V> {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn nnz(&self) -> usize {
        self.nnz
    }
    fn kind(&self) -> FormatKind {
        FormatKind::CsrDu
    }
    fn size_bytes(&self) -> usize {
        CsrDu::size_bytes(self)
    }

    fn spmv(&self, x: &[V], y: &mut [V]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        spmv::spmv_range(
            self,
            crate::simd::selected(),
            0..self.ctl.len(),
            0,
            usize::MAX,
            0,
            self.nrows,
            0,
            x,
            y,
        );
    }

    fn validate(&self) -> std::result::Result<(), crate::error::SparseError> {
        let (nnz, units) = self.validate_ctl_stream()?;
        if nnz != self.values.len() || nnz != self.nnz {
            return Err(crate::error::SparseError::InvalidFormat(format!(
                "ctl stream covers {nnz} non-zeros but header says {} and {} values stored",
                self.nnz,
                self.values.len()
            )));
        }
        if units != self.units {
            return Err(crate::error::SparseError::InvalidFormat(format!(
                "ctl stream has {units} units but header says {}",
                self.units
            )));
        }
        Ok(())
    }
}

impl<V: Scalar> crate::spmm::SpMm<V> for CsrDu<V> {
    fn spmm(&self, x: crate::DenseBlock<'_, V>, mut y: crate::DenseBlockMut<'_, V>) {
        let k = crate::spmm::assert_panel_shapes(self.nrows, self.ncols, &x, &y);
        spmv::spmm_range(
            self,
            crate::simd::selected(),
            0..self.ctl.len(),
            0,
            usize::MAX,
            0,
            self.nrows,
            0,
            x.data(),
            k,
            y.data_mut(),
        );
    }
}

/// One thread's share of a CSR-DU matrix: a byte range of `ctl`, the
/// matching offset into `values`, and the row block it covers. This is
/// exactly the per-thread information the paper describes (§IV): "an offset
/// in the ctl, values and y arrays ... and the total number of rows".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuSplit {
    /// Byte range within the ctl stream.
    pub ctl_range: std::ops::Range<usize>,
    /// Offset of the first value of this split within `values`.
    pub val_start: usize,
    /// First row owned (inclusive); `y[row_start..row_end]` is written
    /// (and zeroed) exclusively by this split.
    pub row_start: usize,
    /// Last row owned (exclusive).
    pub row_end: usize,
    /// Wrapping row baseline: the split's first `NR` unit advances
    /// `1 + row_jmp` from this value to land on its true absolute row.
    pub row_wrap_base: usize,
    /// Non-zeros in this split.
    pub nnz: usize,
}

#[cfg(test)]
mod tests;
