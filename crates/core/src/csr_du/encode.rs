//! CSR → CSR-DU encoder.
//!
//! One `O(nnz)` scan. Deltas of a row are buffered until the current unit
//! is *finalized*, which happens when (a) the row ends, (b) the unit
//! reaches 255 elements, or (c) an incoming delta needs a wider storage
//! class than the unit's current one and the unit is already long enough
//! that splitting beats widening (`widen_threshold`). A delta *narrower*
//! than the current class is simply stored wide — mirroring the paper's
//! trade of "less size reduction for innermost loops with minimum
//! overheads".

use super::{CsrDu, UnitType, FLAG_NEW_ROW, FLAG_ROW_JMP};
use crate::csr::Csr;
use crate::index::SpIndex;
use crate::scalar::Scalar;
use crate::varint::write_varint;

/// Tuning knobs for the CSR-DU encoder.
#[derive(Debug, Clone, PartialEq)]
pub struct DuOptions {
    /// Maximum unit length (the `usize` byte caps this at 255).
    pub max_unit: usize,
    /// If an incoming delta needs a wider class and the open unit already
    /// has at least this many elements, the unit is split instead of
    /// widened. Small units are widened to avoid per-unit header overhead.
    pub widen_threshold: usize,
    /// Detect runs of consecutive columns (delta == 1) and emit them as
    /// `SEQ` units with no stored deltas. An extension beyond the paper
    /// (in the spirit of its follow-up CSX work); off by default so the
    /// default configuration matches the paper.
    pub enable_seq: bool,
    /// Minimum run length for a `SEQ` unit.
    pub min_seq: usize,
}

impl Default for DuOptions {
    fn default() -> Self {
        DuOptions { max_unit: 255, widen_threshold: 4, enable_seq: false, min_seq: 8 }
    }
}

impl DuOptions {
    /// Paper-faithful configuration (no sequential units).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Configuration with sequential-run detection enabled.
    pub fn with_seq() -> Self {
        DuOptions { enable_seq: true, ..Self::default() }
    }
}

/// Incremental builder for the ctl stream. Holds the pending unit.
struct CtlBuilder {
    ctl: Vec<u8>,
    units: usize,
    // Pending unit state.
    head_jmp: u64,
    deltas: Vec<u64>,
    unit_type: UnitType,
    new_row: bool,
    row_jmp: u64,
    open: bool,
}

impl CtlBuilder {
    fn new(nnz_hint: usize) -> Self {
        CtlBuilder {
            // Heuristic preallocation: ~1.2 bytes of ctl per nnz is typical
            // for u8-dominated matrices.
            ctl: Vec::with_capacity(nnz_hint + nnz_hint / 4 + 16),
            units: 0,
            head_jmp: 0,
            deltas: Vec::with_capacity(256),
            unit_type: UnitType::U8,
            new_row: false,
            row_jmp: 0,
            open: false,
        }
    }

    /// Opens a fresh unit whose first element is reached by `jmp`.
    fn open_unit(&mut self, jmp: u64, new_row: bool, row_jmp: u64) {
        debug_assert!(!self.open, "previous unit must be finalized first");
        self.head_jmp = jmp;
        self.deltas.clear();
        self.unit_type = UnitType::U8;
        self.new_row = new_row;
        self.row_jmp = row_jmp;
        self.open = true;
    }

    fn len(&self) -> usize {
        1 + self.deltas.len()
    }

    /// Serializes the pending unit into the ctl stream.
    fn finalize(&mut self) {
        if !self.open {
            return;
        }
        let utype = if self.deltas.is_empty() { UnitType::U8 } else { self.unit_type };
        let mut uflags = utype as u8;
        if self.new_row {
            uflags |= FLAG_NEW_ROW;
        }
        if self.row_jmp > 0 {
            debug_assert!(self.new_row, "row jump implies new row");
            uflags |= FLAG_ROW_JMP;
        }
        self.ctl.push(uflags);
        debug_assert!(self.len() <= 255);
        self.ctl.push(self.len() as u8);
        if self.row_jmp > 0 {
            write_varint(&mut self.ctl, self.row_jmp);
        }
        write_varint(&mut self.ctl, self.head_jmp);
        match utype {
            UnitType::U8 => {
                for &d in &self.deltas {
                    self.ctl.push(d as u8);
                }
            }
            UnitType::U16 => {
                for &d in &self.deltas {
                    self.ctl.extend_from_slice(&(d as u16).to_le_bytes());
                }
            }
            UnitType::U32 => {
                for &d in &self.deltas {
                    self.ctl.extend_from_slice(&(d as u32).to_le_bytes());
                }
            }
            UnitType::U64 => {
                for &d in &self.deltas {
                    self.ctl.extend_from_slice(&d.to_le_bytes());
                }
            }
            UnitType::Seq => {}
        }
        self.units += 1;
        self.open = false;
    }
}

/// Encodes `csr` into the CSR-DU byte stream.
pub(super) fn encode<I: SpIndex, V: Scalar>(csr: &Csr<I, V>, opts: &DuOptions) -> CsrDu<V> {
    assert!(opts.max_unit >= 1 && opts.max_unit <= 255, "max_unit must be in 1..=255");
    assert!(opts.min_seq >= 2, "a sequential run needs at least 2 elements");

    let mut b = CtlBuilder::new(csr.nnz());
    let mut pending_empty_rows: u64 = 0;

    for row in 0..csr.nrows() {
        let cols: Vec<usize> = csr.row_iter(row).map(|(c, _)| c).collect();
        if cols.is_empty() {
            pending_empty_rows += 1;
            continue;
        }

        // Column deltas for this row: deltas[0] is the absolute first
        // column (x resets to 0 at a new row), the rest are distances
        // between consecutive non-zeros.
        let mut idx = 0usize;
        let mut prev_col = 0usize;
        let mut new_row = true;

        while idx < cols.len() {
            let jmp = (cols[idx] - prev_col) as u64;
            let row_jmp = if new_row { std::mem::take(&mut pending_empty_rows) } else { 0 };

            if opts.enable_seq {
                // Greedy sequential-run detection starting at idx.
                let mut run = 1usize;
                while idx + run < cols.len()
                    && cols[idx + run] == cols[idx + run - 1] + 1
                    && run < opts.max_unit
                {
                    run += 1;
                }
                if run >= opts.min_seq {
                    b.open_unit(jmp, new_row, row_jmp);
                    b.unit_type = UnitType::Seq;
                    for _ in 1..run {
                        b.deltas.push(1);
                    }
                    b.finalize();
                    prev_col = cols[idx + run - 1];
                    idx += run;
                    new_row = false;
                    continue;
                }
            }

            // General delta unit.
            b.open_unit(jmp, new_row, row_jmp);
            prev_col = cols[idx];
            idx += 1;
            new_row = false;

            while idx < cols.len() && b.len() < opts.max_unit {
                let d = (cols[idx] - prev_col) as u64;
                let need = UnitType::for_delta(d as usize);
                if need.delta_bytes() > b.unit_type.delta_bytes() {
                    if b.len() >= opts.widen_threshold {
                        // Split: the wide delta becomes the next unit's jmp.
                        break;
                    }
                    b.unit_type = need;
                } else if opts.enable_seq && d == 1 {
                    // Peek: would a SEQ unit start here? If a long run of
                    // consecutive columns follows, close this unit so the
                    // run is emitted as SEQ.
                    let mut run = 1usize;
                    while idx + run < cols.len()
                        && cols[idx + run] == cols[idx + run - 1] + 1
                        && run < opts.min_seq
                    {
                        run += 1;
                    }
                    if run >= opts.min_seq {
                        break;
                    }
                }
                b.deltas.push(d);
                prev_col = cols[idx];
                idx += 1;
            }
            b.finalize();
        }
    }
    // Trailing empty rows produce no units; the decoder learns the row
    // count from the matrix header, not the stream.

    let units = b.units;
    CsrDu {
        nrows: csr.nrows(),
        ncols: csr.ncols(),
        nnz: csr.nnz(),
        ctl: b.ctl,
        values: csr.values().to_vec(),
        units,
    }
}
