//! The CSR-DU SpMV kernel (Fig. 3 of the paper), generalized to SpMM.
//!
//! Structure mirrors the paper's code snippet: per unit, extract `uflags`
//! and `usize`, perform row bookkeeping on `NR`, add the `ujmp` column
//! jump, then `switch` on the unit type into a tight same-width inner loop.
//! The row accumulator is kept in a register and flushed on row change
//! (the paper's §VI-A store optimization), which also keeps partial sums
//! exactly associative with the CSR kernel: additions happen in the same
//! order, so results are bit-identical to CSR's.
//!
//! The kernel is generic along two axes, both resolved by
//! monomorphization:
//!
//! * a *value accessor* `G`, so that CSR-DU-VI (the combined index+value
//!   compression) reuses the exact same decode loop with an indirect
//!   value load;
//! * a [`RowAcc`] *row accumulator*, so that the multi-vector SpMM path
//!   ([`spmm_ctl_range`]) decodes each unit **once** and broadcasts the
//!   value across a `k`-wide panel. The single-vector entry point
//!   [`spmv_ctl_range`] is the `k = 1` instantiation with a one-element
//!   register accumulator — the same floating-point operations in the
//!   same order as before, so SpMV results are unchanged bit-for-bit.

use super::{CsrDu, UnitType, FLAG_NEW_ROW, FLAG_ROW_JMP};
use crate::scalar::Scalar;
use crate::simd::Isa;
use crate::spmm::{with_row_acc, FixedAcc, RowAcc};
use crate::varint::read_varint;

/// Executes SpMM over `ctl[ctl_range]` with values fetched through `get`,
/// accumulating into the `k`-wide row accumulator `acc`.
///
/// * `val_start` — index of the first value of this range.
/// * `row_wrap_base` — wrapping row baseline (see `decode` module docs).
/// * `row_start..row_end` — the rows owned by this call; their `y` panels
///   are zeroed first and are the only elements written.
/// * `y_base` — subtracted from absolute row numbers when indexing `y`
///   (panel row `r` occupies `y[(r - y_base) * k ..][..k]`), so a
///   parallel driver can pass each thread a disjoint local slice
///   (`y_base = row_start`); serial callers pass the full `y` and 0.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn spmm_ctl_range<V: Scalar, G: Fn(usize) -> V, A: RowAcc<V>>(
    ctl: &[u8],
    get: G,
    ctl_range: std::ops::Range<usize>,
    val_start: usize,
    row_wrap_base: usize,
    row_start: usize,
    row_end: usize,
    y_base: usize,
    x: &[V],
    k: usize,
    y: &mut [V],
    acc: &mut A,
) {
    debug_assert_eq!(acc.k(), k);
    for v in &mut y[(row_start - y_base) * k..(row_end - y_base) * k] {
        *v = V::zero();
    }

    let end = ctl_range.end;
    let mut pos = ctl_range.start;
    let mut val = val_start;

    let mut row = row_wrap_base;
    let mut col = 0usize;
    // Row accumulator (registers for the specialized widths); flushed on
    // row change.
    acc.reset();
    let mut have_row = false;

    while pos < end {
        let uflags = ctl[pos];
        let usize_b = ctl[pos + 1] as usize;
        pos += 2;

        if uflags & FLAG_NEW_ROW != 0 {
            if have_row {
                let base = (row - y_base) * k;
                acc.store(&mut y[base..base + k]);
            }
            let jmp_rows =
                if uflags & FLAG_ROW_JMP != 0 { read_varint(ctl, &mut pos) as usize } else { 0 };
            row = row.wrapping_add(1 + jmp_rows);
            col = 0;
            acc.reset();
            have_row = true;
        }
        col += read_varint(ctl, &mut pos) as usize;

        // First element of the unit.
        acc.fma(get(val), &x[col * k..col * k + k]);
        val += 1;
        let mut remaining = usize_b - 1;

        match UnitType::from_flags(uflags) {
            UnitType::U8 => {
                while remaining > 0 {
                    col += ctl[pos] as usize;
                    pos += 1;
                    acc.fma(get(val), &x[col * k..col * k + k]);
                    val += 1;
                    remaining -= 1;
                }
            }
            UnitType::U16 => {
                while remaining > 0 {
                    col += u16::from_le_bytes([ctl[pos], ctl[pos + 1]]) as usize;
                    pos += 2;
                    acc.fma(get(val), &x[col * k..col * k + k]);
                    val += 1;
                    remaining -= 1;
                }
            }
            UnitType::U32 => {
                while remaining > 0 {
                    col +=
                        u32::from_le_bytes(ctl[pos..pos + 4].try_into().expect("4 bytes")) as usize;
                    pos += 4;
                    acc.fma(get(val), &x[col * k..col * k + k]);
                    val += 1;
                    remaining -= 1;
                }
            }
            UnitType::U64 => {
                while remaining > 0 {
                    col +=
                        u64::from_le_bytes(ctl[pos..pos + 8].try_into().expect("8 bytes")) as usize;
                    pos += 8;
                    acc.fma(get(val), &x[col * k..col * k + k]);
                    val += 1;
                    remaining -= 1;
                }
            }
            UnitType::Seq => {
                while remaining > 0 {
                    col += 1;
                    acc.fma(get(val), &x[col * k..col * k + k]);
                    val += 1;
                    remaining -= 1;
                }
            }
        }
    }
    if have_row {
        let base = (row - y_base) * k;
        acc.store(&mut y[base..base + k]);
    }
}

/// Executes SpMV over `ctl[ctl_range]` with values fetched through `get` —
/// the `k = 1` instantiation of [`spmm_ctl_range`] with a one-element
/// register accumulator (bit-identical to the dedicated SpMV kernel it
/// replaces). Parameters as on [`spmm_ctl_range`].
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn spmv_ctl_range<V: Scalar, G: Fn(usize) -> V>(
    ctl: &[u8],
    get: G,
    ctl_range: std::ops::Range<usize>,
    val_start: usize,
    row_wrap_base: usize,
    row_start: usize,
    row_end: usize,
    y_base: usize,
    x: &[V],
    y: &mut [V],
) {
    let mut acc = FixedAcc::<V, 1>::new();
    spmm_ctl_range(
        ctl,
        get,
        ctl_range,
        val_start,
        row_wrap_base,
        row_start,
        row_end,
        y_base,
        x,
        1,
        y,
        &mut acc,
    );
}

/// CSR-DU entry point: direct value loads from the `values` array.
/// `isa` is the pre-selected kernel ISA (unavailable choices degrade to
/// the scalar decode loop).
#[allow(clippy::too_many_arguments)]
pub(super) fn spmv_range<V: Scalar>(
    du: &CsrDu<V>,
    isa: Isa,
    ctl_range: std::ops::Range<usize>,
    val_start: usize,
    row_wrap_base: usize,
    row_start: usize,
    row_end: usize,
    y_base: usize,
    x: &[V],
    y: &mut [V],
) {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::avx2_ok(isa) && du.ncols() <= i32::MAX as usize {
        use crate::simd::{as_f64s, as_f64s_mut, avx2};
        if let Some(vs) = as_f64s(du.values()) {
            let (xs, ys) = (as_f64s(x).expect("V is f64"), as_f64s_mut(y).expect("V is f64"));
            // Safety: AVX2 verified by avx2_ok; the ctl stream was built
            // by this crate's encoder (same trust as the scalar decode);
            // ncols fits the i32 gather lanes.
            unsafe {
                avx2::du_ctl_k1(
                    du.ctl(),
                    avx2::ValSrc::Direct(vs),
                    ctl_range,
                    val_start,
                    row_wrap_base,
                    row_start,
                    row_end,
                    y_base,
                    xs,
                    ys,
                );
            }
            return;
        }
    }
    let _ = isa;
    let values = du.values();
    spmv_ctl_range(
        du.ctl(),
        #[inline(always)]
        |j| values[j],
        ctl_range,
        val_start,
        row_wrap_base,
        row_start,
        row_end,
        y_base,
        x,
        y,
    );
}

/// CSR-DU SpMM entry point: direct value loads, panel width `k`
/// dispatched to the specialized accumulators (AVX2 panel kernels for
/// `k ∈ {1, 2, 4, 8}` with `f64` values when the ISA allows).
#[allow(clippy::too_many_arguments)]
pub(super) fn spmm_range<V: Scalar>(
    du: &CsrDu<V>,
    isa: Isa,
    ctl_range: std::ops::Range<usize>,
    val_start: usize,
    row_wrap_base: usize,
    row_start: usize,
    row_end: usize,
    y_base: usize,
    x: &[V],
    k: usize,
    y: &mut [V],
) {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::avx2_ok(isa) && matches!(k, 1 | 2 | 4 | 8) && du.ncols() <= i32::MAX as usize {
        use crate::simd::{as_f64s, as_f64s_mut, avx2};
        if let Some(vs) = as_f64s(du.values()) {
            let (xs, ys) = (as_f64s(x).expect("V is f64"), as_f64s_mut(y).expect("V is f64"));
            let src = avx2::ValSrc::Direct(vs);
            // Safety: as on spmv_range's dispatch above.
            unsafe {
                match k {
                    1 => avx2::du_ctl_k1(
                        du.ctl(),
                        src,
                        ctl_range,
                        val_start,
                        row_wrap_base,
                        row_start,
                        row_end,
                        y_base,
                        xs,
                        ys,
                    ),
                    2 => avx2::du_ctl_k2(
                        du.ctl(),
                        src,
                        ctl_range,
                        val_start,
                        row_wrap_base,
                        row_start,
                        row_end,
                        y_base,
                        xs,
                        ys,
                    ),
                    4 => avx2::du_ctl_k4(
                        du.ctl(),
                        src,
                        ctl_range,
                        val_start,
                        row_wrap_base,
                        row_start,
                        row_end,
                        y_base,
                        xs,
                        ys,
                    ),
                    _ => avx2::du_ctl_k8(
                        du.ctl(),
                        src,
                        ctl_range,
                        val_start,
                        row_wrap_base,
                        row_start,
                        row_end,
                        y_base,
                        xs,
                        ys,
                    ),
                }
            }
            return;
        }
    }
    let _ = isa;
    let values = du.values();
    with_row_acc!(k, acc => {
        spmm_ctl_range(
            du.ctl(),
            #[inline(always)]
            |j| values[j],
            ctl_range.clone(),
            val_start,
            row_wrap_base,
            row_start,
            row_end,
            y_base,
            x,
            k,
            y,
            &mut acc,
        )
    });
}
