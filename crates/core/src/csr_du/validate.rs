//! Bounds-checked validation of an untrusted ctl byte stream (used when
//! deserializing CSR-DU containers).

use super::{UnitType, FLAG_NEW_ROW, FLAG_ROW_JMP, TYPE_MASK};
use crate::error::{Result, SparseError};
use crate::varint::try_read_varint;

/// Walks `ctl` with full bounds checking and returns `(nnz, units)` on
/// success. Rejects truncated streams, unknown unit types, zero-length
/// units, row overruns and column overruns.
pub(super) fn validate_ctl(ctl: &[u8], nrows: usize, ncols: usize) -> Result<(usize, usize)> {
    let mut pos = 0usize;
    let mut nnz = 0usize;
    let mut units = 0usize;
    let mut row = usize::MAX; // wrapping start
    let mut col = 0usize;
    let mut started = false;

    let fail = |msg: &str| SparseError::InvalidFormat(format!("ctl stream: {msg}"));

    while pos < ctl.len() {
        if pos + 2 > ctl.len() {
            return Err(fail("truncated unit header"));
        }
        let uflags = ctl[pos];
        let len = ctl[pos + 1] as usize;
        pos += 2;
        if len == 0 {
            return Err(fail("zero-length unit"));
        }
        let utype = match uflags & TYPE_MASK {
            0 => UnitType::U8,
            1 => UnitType::U16,
            2 => UnitType::U32,
            3 => UnitType::U64,
            4 => UnitType::Seq,
            t => return Err(fail(&format!("unknown unit type {t}"))),
        };

        let new_row = uflags & FLAG_NEW_ROW != 0;
        if !started && !new_row {
            return Err(fail("stream must start with a new-row unit"));
        }
        if new_row {
            let extra = if uflags & FLAG_ROW_JMP != 0 {
                try_read_varint(ctl, &mut pos).ok_or_else(|| fail("truncated row jump"))?
            } else {
                0
            };
            row = if started {
                row.checked_add(1 + extra as usize).ok_or_else(|| fail("row overflow"))?
            } else {
                started = true;
                extra as usize
            };
            if row >= nrows {
                return Err(fail(&format!("row {row} >= nrows {nrows}")));
            }
            col = 0;
        } else if uflags & FLAG_ROW_JMP != 0 {
            return Err(fail("row jump without new-row flag"));
        }

        let jmp =
            try_read_varint(ctl, &mut pos).ok_or_else(|| fail("truncated column jump"))? as usize;
        col = col.checked_add(jmp).ok_or_else(|| fail("column overflow"))?;
        if col >= ncols {
            return Err(fail(&format!("column {col} >= ncols {ncols}")));
        }

        let body = (len - 1) * utype.delta_bytes();
        if pos + body > ctl.len() {
            return Err(fail("truncated unit body"));
        }
        // Walk the deltas and bound-check the columns.
        for k in 0..len - 1 {
            let d = match utype {
                UnitType::U8 => ctl[pos + k] as usize,
                UnitType::U16 => {
                    u16::from_le_bytes([ctl[pos + 2 * k], ctl[pos + 2 * k + 1]]) as usize
                }
                UnitType::U32 => u32::from_le_bytes(
                    ctl[pos + 4 * k..pos + 4 * k + 4].try_into().expect("4 bytes"),
                ) as usize,
                UnitType::U64 => u64::from_le_bytes(
                    ctl[pos + 8 * k..pos + 8 * k + 8].try_into().expect("8 bytes"),
                ) as usize,
                UnitType::Seq => 1,
            };
            col = col.checked_add(d).ok_or_else(|| fail("column overflow"))?;
            if col >= ncols {
                return Err(fail(&format!("column {col} >= ncols {ncols}")));
            }
        }
        pos += body;
        nnz += len;
        units += 1;
    }
    Ok((nnz, units))
}
