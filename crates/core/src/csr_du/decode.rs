//! CSR-DU decoding: the unit cursor, CSR reconstruction and the
//! row-partition split computation.
//!
//! ## Row tracking protocol
//!
//! The kernel tracks the current row as a *wrapping* `usize`. At every
//! `NR` unit it advances by `1 + row_jmp`. A decode that starts at the
//! stream head begins from the virtual row `-1` (`usize::MAX`), so the
//! first unit lands on row `row_jmp` — which handles leading empty rows.
//! A decode that starts mid-stream (a thread's split) begins from the
//! baseline recorded in [`DuSplit::row_wrap_base`], chosen so the split's
//! first unit lands on its true absolute row.

use super::{CsrDu, DuSplit, UnitType, FLAG_NEW_ROW, FLAG_ROW_JMP};
use crate::csr::Csr;
use crate::error::Result;
use crate::scalar::Scalar;
use crate::varint::read_varint;

/// A decoded unit header plus the absolute position it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unit {
    /// Byte offset of this unit's `uflags` within the ctl stream.
    pub ctl_offset: usize,
    /// Byte offset one past the unit's last ucis byte.
    pub ctl_end: usize,
    /// Row this unit lives in.
    pub row: usize,
    /// `true` if this unit started its row.
    pub new_row: bool,
    /// Number of empty rows jumped over before this unit's row (the
    /// `urjmp` varint; 0 unless the `RJMP` flag was set).
    pub row_jmp: u64,
    /// Absolute column of the unit's first non-zero.
    pub first_col: usize,
    /// Number of non-zeros covered.
    pub len: usize,
    /// Delta storage class.
    pub utype: UnitType,
    /// Offset of the unit's first value within the `values` array.
    pub val_offset: usize,
}

/// Streaming decoder over the ctl byte stream, yielding [`Unit`]s in
/// storage order. Tracks row/column position exactly as the SpMV kernel
/// does.
pub struct DuCursor<'a> {
    ctl: &'a [u8],
    pos: usize,
    row: usize, // wrapping; starts at usize::MAX (virtual row -1)
    col: usize,
    val_offset: usize,
}

impl<'a> DuCursor<'a> {
    pub(super) fn new(ctl: &'a [u8]) -> Self {
        DuCursor { ctl, pos: 0, row: usize::MAX, col: 0, val_offset: 0 }
    }

    /// Decodes the delta values of `unit` into absolute column indices.
    pub fn unit_cols(&self, unit: &Unit) -> Vec<usize> {
        let mut cols = Vec::with_capacity(unit.len);
        let mut col = unit.first_col;
        cols.push(col);
        let mut pos = unit.ctl_end - (unit.len - 1) * unit.utype.delta_bytes();
        for _ in 1..unit.len {
            col += read_delta(self.ctl, &mut pos, unit.utype);
            cols.push(col);
        }
        cols
    }
}

/// Reads one delta of class `utype` at `*pos`, advancing the position.
#[inline(always)]
fn read_delta(ctl: &[u8], pos: &mut usize, utype: UnitType) -> usize {
    match utype {
        UnitType::U8 => {
            let v = ctl[*pos] as usize;
            *pos += 1;
            v
        }
        UnitType::U16 => {
            let v = u16::from_le_bytes([ctl[*pos], ctl[*pos + 1]]) as usize;
            *pos += 2;
            v
        }
        UnitType::U32 => {
            let v = u32::from_le_bytes(ctl[*pos..*pos + 4].try_into().expect("4 bytes")) as usize;
            *pos += 4;
            v
        }
        UnitType::U64 => {
            let v = u64::from_le_bytes(ctl[*pos..*pos + 8].try_into().expect("8 bytes")) as usize;
            *pos += 8;
            v
        }
        UnitType::Seq => 1,
    }
}

impl<'a> Iterator for DuCursor<'a> {
    type Item = Unit;

    fn next(&mut self) -> Option<Unit> {
        if self.pos >= self.ctl.len() {
            return None;
        }
        let ctl_offset = self.pos;
        let uflags = self.ctl[self.pos];
        let len = self.ctl[self.pos + 1] as usize;
        self.pos += 2;
        debug_assert!(len >= 1, "corrupt ctl: zero-length unit");

        let new_row = uflags & FLAG_NEW_ROW != 0;
        let mut row_jmp = 0u64;
        if new_row {
            if uflags & FLAG_ROW_JMP != 0 {
                row_jmp = read_varint(self.ctl, &mut self.pos);
            }
            self.row = self.row.wrapping_add(1 + row_jmp as usize);
            self.col = 0;
        }
        let jmp = read_varint(self.ctl, &mut self.pos) as usize;
        self.col += jmp;
        let first_col = self.col;

        let utype = UnitType::from_flags(uflags);
        let mut pos = self.pos;
        for _ in 1..len {
            self.col += read_delta(self.ctl, &mut pos, utype);
        }
        // Seq units store no delta bytes; `pos` already accounts for that
        // because read_delta(Seq) does not advance.
        self.pos = pos;

        let unit = Unit {
            ctl_offset,
            ctl_end: self.pos,
            row: self.row,
            new_row,
            row_jmp,
            first_col,
            len,
            utype,
            val_offset: self.val_offset,
        };
        self.val_offset += len;
        Some(unit)
    }
}

/// Reconstructs a CSR matrix from the CSR-DU stream (lossless round-trip).
pub(super) fn to_csr<V: Scalar>(du: &CsrDu<V>) -> Result<Csr<u32, V>> {
    let mut row_ptr: Vec<u32> = Vec::with_capacity(du.nrows() + 1);
    let mut col_ind: Vec<u32> = Vec::with_capacity(du.nnz());
    row_ptr.push(0);
    let mut current_row = 0usize;
    let cursor = DuCursor::new(du.ctl());
    let units: Vec<Unit> = du.cursor().collect();
    // The reconstruction targets u32 indices regardless of how the stream
    // was produced, so every column and prefix count is range-checked —
    // an untrusted ctl stream must not silently wrap into a "valid" CSR.
    use crate::index::SpIndex;
    for unit in &units {
        while current_row < unit.row {
            row_ptr.push(u32::from_usize(col_ind.len())?);
            current_row += 1;
        }
        for c in cursor.unit_cols(unit) {
            col_ind.push(u32::from_usize(c)?);
        }
    }
    while current_row < du.nrows() {
        row_ptr.push(u32::from_usize(col_ind.len())?);
        current_row += 1;
    }
    Csr::from_raw_parts(du.nrows(), du.ncols(), row_ptr, col_ind, du.values().to_vec())
}

/// Computes up to `nparts` nnz-balanced splits, cutting only where the next
/// unit starts a new row.
pub(super) fn splits<V: Scalar>(du: &CsrDu<V>, nparts: usize) -> Vec<DuSplit> {
    assert!(nparts >= 1, "need at least one part");
    let total_nnz = du.nnz();
    let mut out: Vec<DuSplit> = Vec::with_capacity(nparts);
    if total_nnz == 0 {
        out.push(DuSplit {
            ctl_range: 0..0,
            val_start: 0,
            row_start: 0,
            row_end: du.nrows(),
            row_wrap_base: usize::MAX,
            nnz: 0,
        });
        return out;
    }

    let units: Vec<Unit> = du.cursor().collect();
    let mut part_start_ctl = 0usize;
    let mut part_start_val = 0usize;
    let mut part_start_row = 0usize;
    // Stream head decodes from virtual row -1.
    let mut part_wrap_base = usize::MAX;
    let mut nnz_seen = 0usize;
    let mut part = 0usize;

    for (i, unit) in units.iter().enumerate() {
        nnz_seen += unit.len;
        let target = (part + 1) * total_nnz / nparts;
        let next = units.get(i + 1);
        let at_end = next.is_none();
        let cuttable = next.map(|n| n.new_row).unwrap_or(true);
        if at_end || (nnz_seen >= target && cuttable && part + 1 < nparts) {
            let (row_end, next_base) = match next {
                Some(n) => {
                    // The next part's first unit advances by 1 + row_jmp
                    // from the baseline, so pick the baseline that lands it
                    // on its true row.
                    (n.row, n.row.wrapping_sub(1 + n.row_jmp as usize))
                }
                None => (du.nrows(), 0),
            };
            out.push(DuSplit {
                ctl_range: part_start_ctl..unit.ctl_end,
                val_start: part_start_val,
                row_start: part_start_row,
                row_end,
                row_wrap_base: part_wrap_base,
                nnz: unit.val_offset + unit.len - part_start_val,
            });
            part_start_ctl = unit.ctl_end;
            part_start_val = unit.val_offset + unit.len;
            part_start_row = row_end;
            part_wrap_base = next_base;
            part += 1;
        }
        if at_end {
            break;
        }
    }
    out
}
