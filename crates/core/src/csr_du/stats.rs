//! CSR-DU stream statistics: unit-type histogram, size breakdown and the
//! average unit length — the quantities that explain when delta encoding
//! pays off (ablation A1 of DESIGN.md).

use super::{CsrDu, UnitType};
use crate::scalar::Scalar;

/// Statistics computed from a CSR-DU stream.
#[derive(Debug, Clone, PartialEq)]
pub struct DuStats {
    /// Units per delta-width class (indexed by `UnitType as usize`).
    pub units_by_type: [usize; 5],
    /// Non-zeros covered per delta-width class.
    pub nnz_by_type: [usize; 5],
    /// Total units.
    pub units: usize,
    /// Total non-zeros.
    pub nnz: usize,
    /// ctl stream bytes.
    pub ctl_bytes: usize,
    /// Bytes the equivalent CSR `col_ind` + `row_ptr` arrays occupy (u32).
    pub csr_index_bytes: usize,
}

impl DuStats {
    /// Mean non-zeros per unit; long units amortize header decode cost.
    pub fn avg_unit_len(&self) -> f64 {
        if self.units == 0 {
            0.0
        } else {
            self.nnz as f64 / self.units as f64
        }
    }

    /// Fraction of non-zeros in 1-byte-delta units (high = very regular
    /// matrix, maximum index compression).
    pub fn u8_fraction(&self) -> f64 {
        if self.nnz == 0 {
            0.0
        } else {
            self.nnz_by_type[UnitType::U8 as usize] as f64 / self.nnz as f64
        }
    }

    /// Index-data compression ratio: CSR index bytes / ctl bytes.
    pub fn index_compression_ratio(&self) -> f64 {
        self.csr_index_bytes as f64 / self.ctl_bytes as f64
    }

    /// Average ctl bytes spent per non-zero (CSR spends 4).
    pub fn ctl_bytes_per_nnz(&self) -> f64 {
        if self.nnz == 0 {
            0.0
        } else {
            self.ctl_bytes as f64 / self.nnz as f64
        }
    }
}

pub(super) fn compute<V: Scalar>(du: &CsrDu<V>) -> DuStats {
    let mut units_by_type = [0usize; 5];
    let mut nnz_by_type = [0usize; 5];
    let mut units = 0usize;
    let mut nnz = 0usize;
    for unit in du.cursor() {
        units_by_type[unit.utype as usize] += 1;
        nnz_by_type[unit.utype as usize] += unit.len;
        units += 1;
        nnz += unit.len;
    }
    DuStats {
        units_by_type,
        nnz_by_type,
        units,
        nnz,
        ctl_bytes: du.ctl().len(),
        csr_index_bytes: du.nnz() * 4 + (du.nrows() + 1) * 4,
    }
}
