//! Symmetric CSR — stores only the lower triangle (including the
//! diagonal), halving both index and value data for symmetric matrices.
//!
//! The paper's related work (§III-C, Lee et al.) identifies symmetry as
//! the other major value/index-data reduction: for `A = Aᵀ` the upper
//! triangle is implied. The SpMV kernel applies each stored off-diagonal
//! entry twice (`y[i] += a·x[j]` and `y[j] += a·x[i]`), trading the
//! paper's "CPU work for traffic" in yet another form: the second update
//! scatters into `y`, which is why the format parallelizes poorly with
//! plain row partitioning (each thread would write foreign rows) — the
//! provided parallel path uses per-thread private `y` accumulators like
//! column partitioning.

use crate::coo::Coo;
use crate::csr::Csr;
use crate::error::{Result, SparseError};
use crate::index::SpIndex;
use crate::scalar::Scalar;
use crate::spmv::{FormatKind, SpMv};
use crate::stats::SizeReport;

/// A symmetric sparse matrix storing its lower triangle in CSR layout.
#[derive(Debug, Clone, PartialEq)]
pub struct SymCsr<I: SpIndex = u32, V: Scalar = f64> {
    lower: Csr<I, V>,
    /// Number of stored off-diagonal entries (each represents two logical
    /// non-zeros).
    off_diag: usize,
}

impl<I: SpIndex, V: Scalar> SymCsr<I, V> {
    /// Builds from a full CSR matrix, validating symmetry exactly
    /// (`A[i,j].to_bits() == A[j,i].to_bits()`).
    pub fn from_csr(full: &Csr<I, V>) -> Result<SymCsr<I, V>> {
        if full.nrows() != full.ncols() {
            return Err(SparseError::DimensionMismatch(
                "symmetric storage needs a square matrix".into(),
            ));
        }
        let t = full.transpose()?;
        if t != *full {
            return Err(SparseError::InvalidFormat(
                "matrix is not symmetric (A != A^T bitwise)".into(),
            ));
        }
        let mut coo = Coo::with_capacity(full.nrows(), full.ncols(), full.nnz() / 2 + full.nrows());
        let mut off_diag = 0usize;
        for (r, c, v) in full.iter() {
            if c < r {
                off_diag += 1;
                coo.push(r, c, v)?;
            } else if c == r {
                coo.push(r, c, v)?;
            }
        }
        Ok(SymCsr { lower: coo.to_csr_with_index::<I>()?, off_diag })
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.lower.nrows()
    }

    /// Stored entries (lower triangle + diagonal).
    pub fn stored_nnz(&self) -> usize {
        self.lower.nnz()
    }

    /// Logical non-zeros of the full matrix.
    pub fn logical_nnz(&self) -> usize {
        self.lower.nnz() + self.off_diag
    }

    /// The lower-triangle CSR.
    pub fn lower(&self) -> &Csr<I, V> {
        &self.lower
    }

    /// Reconstructs the full CSR matrix.
    pub fn to_full(&self) -> Result<Csr<I, V>> {
        let mut coo = Coo::with_capacity(self.n(), self.n(), self.logical_nnz());
        for (r, c, v) in self.lower.iter() {
            coo.push(r, c, v)?;
            if c != r {
                coo.push(c, r, v)?;
            }
        }
        coo.to_csr_with_index::<I>()
    }

    /// Size comparison against full CSR storage.
    pub fn size_report(&self) -> SizeReport {
        SizeReport {
            csr_bytes: self.logical_nnz() * (I::BYTES + V::BYTES) + (self.n() + 1) * I::BYTES,
            compressed_bytes: SpMv::size_bytes(self),
        }
    }
}

impl<I: SpIndex, V: Scalar> SpMv<V> for SymCsr<I, V> {
    fn nrows(&self) -> usize {
        self.n()
    }
    fn ncols(&self) -> usize {
        self.n()
    }
    fn nnz(&self) -> usize {
        self.logical_nnz()
    }
    fn kind(&self) -> FormatKind {
        FormatKind::Csr // stored as CSR; reported sizes differ
    }
    fn size_bytes(&self) -> usize {
        self.lower.size_bytes()
    }
    fn flops(&self) -> usize {
        2 * self.logical_nnz()
    }

    fn spmv(&self, x: &[V], y: &mut [V]) {
        assert_eq!(x.len(), self.n(), "x length must equal n");
        assert_eq!(y.len(), self.n(), "y length must equal n");
        for v in y.iter_mut() {
            *v = V::zero();
        }
        for i in 0..self.n() {
            let mut acc = V::zero();
            for (j, a) in self.lower.row_iter(i) {
                acc += a * x[j];
                if j != i {
                    // Mirrored upper-triangle contribution.
                    y[j] += a * x[i];
                }
            }
            y[i] += acc;
        }
    }

    fn validate(&self) -> std::result::Result<(), SparseError> {
        self.lower.validate()?;
        if self.lower.nrows() != self.lower.ncols() {
            return Err(SparseError::DimensionMismatch(
                "symmetric storage needs a square matrix".into(),
            ));
        }
        let mut off_diag = 0usize;
        for (r, c, _) in self.lower.iter() {
            if c > r {
                return Err(SparseError::InvalidFormat(format!(
                    "entry ({r}, {c}) above the diagonal in lower-triangle storage"
                )));
            }
            if c < r {
                off_diag += 1;
            }
        }
        if off_diag != self.off_diag {
            return Err(SparseError::InvalidFormat(format!(
                "off-diagonal count {} does not match stored triangle ({off_diag})",
                self.off_diag
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym_matrix(n: usize) -> Csr<u32, f64> {
        // Symmetric pentadiagonal.
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 4.0));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
            if i + 3 < n {
                t.push((i, i + 3, 0.5));
                t.push((i + 3, i, 0.5));
            }
        }
        Coo::from_triplets(n, n, t).unwrap().to_csr()
    }

    #[test]
    fn roundtrip_and_counts() {
        let full = sym_matrix(50);
        let sym = SymCsr::from_csr(&full).unwrap();
        assert_eq!(sym.to_full().unwrap(), full);
        assert_eq!(sym.logical_nnz(), full.nnz());
        assert!(sym.stored_nnz() < full.nnz());
        // Stored ~ (nnz + n) / 2.
        assert_eq!(sym.stored_nnz(), (full.nnz() - 50) / 2 + 50);
    }

    #[test]
    fn spmv_matches_full() {
        let full = sym_matrix(80);
        let sym = SymCsr::from_csr(&full).unwrap();
        let x: Vec<f64> = (0..80).map(|i| (i as f64) * 0.1 - 4.0).collect();
        let mut y_full = vec![0.0; 80];
        let mut y_sym = vec![1.0; 80];
        full.spmv(&x, &mut y_full);
        sym.spmv(&x, &mut y_sym);
        for (a, b) in y_sym.iter().zip(&y_full) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn size_halves_for_large_symmetric() {
        let full = sym_matrix(5000);
        let sym = SymCsr::from_csr(&full).unwrap();
        let r = sym.size_report();
        assert!(r.reduction() > 0.35, "reduction {}", r.reduction());
    }

    #[test]
    fn rejects_asymmetric() {
        let coo = Coo::from_triplets(2, 2, vec![(0, 1, 1.0)]).unwrap();
        assert!(matches!(SymCsr::from_csr(&coo.to_csr()), Err(SparseError::InvalidFormat(_))));
    }

    #[test]
    fn rejects_rectangular() {
        let coo = Coo::from_triplets(2, 3, vec![(0, 0, 1.0)]).unwrap();
        assert!(matches!(SymCsr::from_csr(&coo.to_csr()), Err(SparseError::DimensionMismatch(_))));
    }

    #[test]
    fn flops_count_logical_nnz() {
        let full = sym_matrix(10);
        let sym = SymCsr::from_csr(&full).unwrap();
        assert_eq!(SpMv::<f64>::flops(&sym), SpMv::<f64>::flops(&full));
    }
}
