//! JAD (Jagged Diagonal) — §III-A baseline.
//!
//! Rows are sorted by descending non-zero count; the k-th non-zeros of all
//! rows that have one form the k-th *jagged diagonal*, stored contiguously.
//! The kernel walks diagonals, giving long vectorizable inner loops even
//! for irregular matrices — the historic format for vector supercomputers.

use crate::coo::Coo;
use crate::csr::Csr;
use crate::error::Result;
use crate::index::SpIndex;
use crate::scalar::Scalar;
use crate::spmv::{FormatKind, SpMv};

/// A sparse matrix in Jagged Diagonal format.
#[derive(Debug, Clone, PartialEq)]
pub struct Jad<I: SpIndex = u32, V: Scalar = f64> {
    nrows: usize,
    ncols: usize,
    /// Permutation: `perm[k]` = original row index of sorted position k.
    perm: Vec<I>,
    /// Start of each jagged diagonal in `col_ind`/`values`.
    diag_ptr: Vec<I>,
    col_ind: Vec<I>,
    values: Vec<V>,
}

impl<I: SpIndex, V: Scalar> Jad<I, V> {
    /// Builds JAD from CSR.
    pub fn from_csr(csr: &Csr<I, V>) -> Result<Jad<I, V>> {
        let nrows = csr.nrows();
        let mut order: Vec<usize> = (0..nrows).collect();
        // Stable sort keeps equal-length rows in original order.
        order.sort_by_key(|&r| std::cmp::Reverse(csr.row_nnz(r)));

        let max_len = order.first().map(|&r| csr.row_nnz(r)).unwrap_or(0);
        let mut diag_ptr: Vec<I> = Vec::with_capacity(max_len + 1);
        let mut col_ind: Vec<I> = Vec::with_capacity(csr.nnz());
        let mut values: Vec<V> = Vec::with_capacity(csr.nnz());

        diag_ptr.push(I::from_usize(0)?);
        for k in 0..max_len {
            for &r in &order {
                if csr.row_nnz(r) <= k {
                    break; // rows are sorted by descending length
                }
                let j = csr.row_range(r).start + k;
                col_ind.push(csr.col_ind()[j]);
                values.push(csr.values()[j]);
            }
            diag_ptr.push(I::from_usize(col_ind.len())?);
        }

        // Row indices become stored data here, so they must fit in I —
        // checked, unlike CSR, which never materializes row numbers.
        let perm: Vec<I> = order.iter().map(|&r| I::from_usize(r)).collect::<Result<_>>()?;
        Ok(Jad { nrows, ncols: csr.ncols(), perm, diag_ptr, col_ind, values })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of jagged diagonals (= longest row's nnz).
    pub fn num_diagonals(&self) -> usize {
        self.diag_ptr.len() - 1
    }

    /// Converts back to COO.
    pub fn to_coo(&self) -> Coo<V> {
        let mut coo = Coo::with_capacity(self.nrows, self.ncols, self.values.len());
        for k in 0..self.num_diagonals() {
            let lo = self.diag_ptr[k].index();
            let hi = self.diag_ptr[k + 1].index();
            for (slot, j) in (lo..hi).enumerate() {
                coo.push(self.perm[slot].index(), self.col_ind[j].index(), self.values[j])
                    .expect("in bounds by construction");
            }
        }
        coo
    }
}

impl<I: SpIndex, V: Scalar> SpMv<V> for Jad<I, V> {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn kind(&self) -> FormatKind {
        FormatKind::Jad
    }
    fn size_bytes(&self) -> usize {
        self.values.len() * V::BYTES
            + self.col_ind.len() * I::BYTES
            + self.diag_ptr.len() * I::BYTES
            + self.perm.len() * I::BYTES
    }

    fn spmv(&self, x: &[V], y: &mut [V]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        for v in y.iter_mut() {
            *v = V::zero();
        }
        for k in 0..self.num_diagonals() {
            let lo = self.diag_ptr[k].index();
            let hi = self.diag_ptr[k + 1].index();
            for (slot, j) in (lo..hi).enumerate() {
                y[self.perm[slot].index()] += self.values[j] * x[self.col_ind[j].index()];
            }
        }
    }

    fn validate(&self) -> std::result::Result<(), crate::error::SparseError> {
        use crate::error::SparseError;
        if self.perm.len() != self.nrows {
            return Err(SparseError::MalformedPointers(format!(
                "perm length {} != nrows {}",
                self.perm.len(),
                self.nrows
            )));
        }
        let mut seen = vec![false; self.nrows];
        for p in &self.perm {
            let r = p.index();
            if r >= self.nrows || seen[r] {
                return Err(SparseError::InvalidFormat(format!(
                    "perm is not a permutation of 0..{} (entry {r})",
                    self.nrows
                )));
            }
            seen[r] = true;
        }
        if self.col_ind.len() != self.values.len() {
            return Err(SparseError::MalformedPointers("col_ind/values length mismatch".into()));
        }
        if self.diag_ptr.is_empty()
            || self.diag_ptr[0].index() != 0
            || self.diag_ptr[self.diag_ptr.len() - 1].index() != self.values.len()
        {
            return Err(SparseError::MalformedPointers("diag_ptr endpoints invalid".into()));
        }
        let mut prev_len = usize::MAX;
        for k in 0..self.diag_ptr.len() - 1 {
            let (lo, hi) = (self.diag_ptr[k].index(), self.diag_ptr[k + 1].index());
            if lo > hi {
                return Err(SparseError::MalformedPointers(format!(
                    "diag_ptr decreases at diagonal {k}"
                )));
            }
            let len = hi - lo;
            // The kernel indexes perm[slot] for slot < len: each diagonal
            // must be no longer than the row count, and lengths must be
            // non-increasing (rows are sorted by descending nnz).
            if len > self.nrows || len > prev_len {
                return Err(SparseError::InvalidFormat(format!(
                    "jagged diagonal {k} has length {len} (previous {prev_len}, nrows {})",
                    self.nrows
                )));
            }
            prev_len = len;
            for (slot, j) in (lo..hi).enumerate() {
                let c = self.col_ind[j].index();
                if c >= self.ncols {
                    return Err(SparseError::IndexOutOfBounds {
                        row: self.perm[slot].index(),
                        col: c,
                        nrows: self.nrows,
                        ncols: self.ncols,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::paper_matrix;

    #[test]
    fn diagonal_count_is_longest_row() {
        let jad = Jad::from_csr(&paper_matrix().to_csr()).unwrap();
        assert_eq!(jad.num_diagonals(), 4);
        assert_eq!(SpMv::<f64>::nnz(&jad), 16);
    }

    #[test]
    fn spmv_matches_reference() {
        let coo = paper_matrix();
        let jad = Jad::from_csr(&coo.to_csr()).unwrap();
        let x: Vec<f64> = (0..6).map(|i| (i * i) as f64 * 0.1 + 1.0).collect();
        let mut y = vec![5.0; 6];
        let mut y_ref = vec![0.0; 6];
        jad.spmv(&x, &mut y);
        coo.spmv_reference(&x, &mut y_ref);
        for (a, b) in y.iter().zip(&y_ref) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn roundtrip() {
        let coo = paper_matrix();
        let jad = Jad::from_csr(&coo.to_csr()).unwrap();
        let mut back = jad.to_coo();
        back.canonicalize();
        assert_eq!(back.entries(), coo.entries());
    }

    #[test]
    fn handles_empty_rows() {
        let coo = Coo::from_triplets(5, 5, vec![(1, 2, 1.0), (3, 0, 2.0), (3, 4, 3.0)]).unwrap();
        let jad = Jad::from_csr(&coo.to_csr()).unwrap();
        let x = vec![1.0; 5];
        let mut y = vec![0.0; 5];
        let mut y_ref = vec![0.0; 5];
        jad.spmv(&x, &mut y);
        coo.spmv_reference(&x, &mut y_ref);
        assert_eq!(y, y_ref);
    }

    #[test]
    fn empty_matrix() {
        let coo: Coo<f64> = Coo::new(2, 2);
        let jad = Jad::from_csr(&coo.to_csr()).unwrap();
        assert_eq!(jad.num_diagonals(), 0);
        let mut y = vec![1.0; 2];
        jad.spmv(&[1.0; 2], &mut y);
        assert_eq!(y, vec![0.0; 2]);
    }
}
