//! CSR-DU-VI — combined index *and* value compression.
//!
//! The ICPP'08 paper presents CSR-DU and CSR-VI separately; its companion
//! CF'08 paper ("Optimizing sparse matrix-vector multiplication using index
//! and value compression", reference \[8\]) combines them: the ctl byte
//! stream of CSR-DU replaces the structure arrays while the unique-value
//! table of CSR-VI replaces the value array. For matrices that are both
//! structurally regular and value-redundant this compounds the working-set
//! reduction.

use crate::csr::Csr;
use crate::csr_du::{CsrDu, DuOptions, DuSplit};
use crate::csr_vi::ValInd;
use crate::error::Result;
use crate::index::SpIndex;
use crate::scalar::Scalar;
use crate::spmv::{FormatKind, SpMv};
use crate::stats::SizeReport;

/// A sparse matrix with delta-unit structure compression and value
/// indirection.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrDuVi<V: Scalar = f64> {
    du: CsrDu<V>, // `values` inside is EMPTY; kept for ctl + dims + splits
    vals_unique: Vec<V>,
    val_ind: ValInd,
    nnz: usize,
}

impl<V: Scalar> CsrDuVi<V> {
    /// Builds the combined format from CSR. `O(nnz)`. Value deduplication
    /// uses the same canonical-bit-pattern rules as CSR-VI (NaNs collapse
    /// to one table slot; `-0.0`/`+0.0` stay distinct).
    pub fn from_csr<I: SpIndex>(csr: &Csr<I, V>, opts: &DuOptions) -> CsrDuVi<V> {
        let du = CsrDu::from_csr(csr, opts);
        let (vals_unique, val_ind) = crate::csr_vi::build::dedup_values(csr.values());
        let nnz = csr.nnz();
        CsrDuVi { du: du.without_values(), vals_unique, val_ind, nnz }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.du.nrows()
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.du.ncols()
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The control byte stream (structure data).
    pub fn ctl(&self) -> &[u8] {
        self.du.ctl()
    }

    /// The unique-value table.
    pub fn vals_unique(&self) -> &[V] {
        &self.vals_unique
    }

    /// The per-element value indices.
    pub fn val_ind(&self) -> &ValInd {
        &self.val_ind
    }

    /// Number of unique values.
    pub fn unique_values(&self) -> usize {
        self.vals_unique.len()
    }

    /// Number of delta units in the ctl stream.
    pub fn units(&self) -> usize {
        self.du.units()
    }

    /// Total-to-unique values ratio.
    pub fn ttu(&self) -> f64 {
        if self.nnz == 0 {
            0.0
        } else {
            self.nnz as f64 / self.unique_values() as f64
        }
    }

    /// Reconstructs plain CSR (lossless).
    pub fn to_csr(&self) -> Result<Csr<u32, V>> {
        let structure = self.du_with_values();
        structure.to_csr()
    }

    /// Bytes streamed per SpMV.
    pub fn size_bytes(&self) -> usize {
        self.du.ctl().len() + self.val_ind.size_bytes() + self.vals_unique.len() * V::BYTES
    }

    /// Size comparison against the u32/f64-style CSR baseline.
    pub fn size_report(&self) -> SizeReport {
        SizeReport {
            csr_bytes: self.nnz * (4 + V::BYTES) + (self.nrows() + 1) * 4,
            compressed_bytes: self.size_bytes(),
        }
    }

    /// nnz-balanced row splits (delegates to the DU stream).
    pub fn splits(&self, nparts: usize) -> Vec<DuSplit> {
        self.du.splits(nparts)
    }

    /// SpMV over one split, writing only the rows the split owns (`y` is
    /// the full-length output vector).
    pub fn spmv_split(&self, split: &DuSplit, x: &[V], y: &mut [V]) {
        self.spmv_impl(
            split.ctl_range.clone(),
            split.val_start,
            split.row_wrap_base,
            split.row_start,
            split.row_end,
            0,
            x,
            y,
        );
    }

    /// Like [`CsrDuVi::spmv_split`], but writes into a local slice covering
    /// only the split's rows (for parallel drivers).
    pub fn spmv_split_local(&self, split: &DuSplit, x: &[V], y_local: &mut [V]) {
        self.spmv_split_local_isa(crate::simd::selected(), split, x, y_local);
    }

    /// [`CsrDuVi::spmv_split_local`] with an explicit, pre-selected
    /// [`crate::simd::Isa`] — for parallel plans that snapshot the ISA at
    /// construction. An unavailable ISA degrades to the scalar decode.
    pub fn spmv_split_local_isa(
        &self,
        isa: crate::simd::Isa,
        split: &DuSplit,
        x: &[V],
        y_local: &mut [V],
    ) {
        debug_assert_eq!(y_local.len(), split.row_end - split.row_start);
        self.spmv_impl_isa(
            isa,
            split.ctl_range.clone(),
            split.val_start,
            split.row_wrap_base,
            split.row_start,
            split.row_end,
            split.row_start,
            x,
            y_local,
        );
    }

    /// SpMM over one split (full-size row-major panels): the multi-vector
    /// analogue of [`CsrDuVi::spmv_split`]. One decode of the ctl stream
    /// *and* one value-table indirection per non-zero feed `k` FMAs.
    pub fn spmm_split(&self, split: &DuSplit, x: &[V], k: usize, y: &mut [V]) {
        self.spmm_impl(
            split.ctl_range.clone(),
            split.val_start,
            split.row_wrap_base,
            split.row_start,
            split.row_end,
            0,
            x,
            k,
            y,
        );
    }

    /// Like [`CsrDuVi::spmm_split`], but `y_local` covers only the split's
    /// own row panels (for parallel drivers).
    pub fn spmm_split_local(&self, split: &DuSplit, x: &[V], k: usize, y_local: &mut [V]) {
        self.spmm_split_local_isa(crate::simd::selected(), split, x, k, y_local);
    }

    /// [`CsrDuVi::spmm_split_local`] with an explicit, pre-selected
    /// [`crate::simd::Isa`] (see [`CsrDuVi::spmv_split_local_isa`]).
    pub fn spmm_split_local_isa(
        &self,
        isa: crate::simd::Isa,
        split: &DuSplit,
        x: &[V],
        k: usize,
        y_local: &mut [V],
    ) {
        debug_assert_eq!(y_local.len(), (split.row_end - split.row_start) * k);
        self.spmm_impl_isa(
            isa,
            split.ctl_range.clone(),
            split.val_start,
            split.row_wrap_base,
            split.row_start,
            split.row_end,
            split.row_start,
            x,
            k,
            y_local,
        );
    }

    /// Palette value source for the AVX2 decode, when `V` is `f64` and
    /// the unique-value table fits the i32 gather lanes.
    #[cfg(target_arch = "x86_64")]
    fn val_src(&self) -> Option<crate::simd::avx2::ValSrc<'_>> {
        use crate::simd::avx2::ValSrc;
        let pal = crate::simd::as_f64s(&self.vals_unique)?;
        if pal.len() > i32::MAX as usize {
            return None;
        }
        Some(match &self.val_ind {
            ValInd::U8(ind) => ValSrc::Pal8(pal, ind),
            ValInd::U16(ind) => ValSrc::Pal16(pal, ind),
            ValInd::U32(ind) => ValSrc::Pal32(pal, ind),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn spmv_impl(
        &self,
        ctl_range: std::ops::Range<usize>,
        val_start: usize,
        row_wrap_base: usize,
        row_start: usize,
        row_end: usize,
        y_base: usize,
        x: &[V],
        y: &mut [V],
    ) {
        self.spmv_impl_isa(
            crate::simd::selected(),
            ctl_range,
            val_start,
            row_wrap_base,
            row_start,
            row_end,
            y_base,
            x,
            y,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn spmv_impl_isa(
        &self,
        isa: crate::simd::Isa,
        ctl_range: std::ops::Range<usize>,
        val_start: usize,
        row_wrap_base: usize,
        row_start: usize,
        row_end: usize,
        y_base: usize,
        x: &[V],
        y: &mut [V],
    ) {
        #[cfg(target_arch = "x86_64")]
        if crate::simd::avx2_ok(isa) && self.ncols() <= i32::MAX as usize {
            use crate::simd::{as_f64s, as_f64s_mut, avx2};
            if let Some(src) = self.val_src() {
                let (xs, ys) = (as_f64s(x).expect("V is f64"), as_f64s_mut(y).expect("V is f64"));
                // Safety: AVX2 verified by avx2_ok; ctl stream built by
                // this crate's encoder; ncols and the value table fit the
                // i32 gather lanes.
                unsafe {
                    avx2::du_ctl_k1(
                        self.du.ctl(),
                        src,
                        ctl_range,
                        val_start,
                        row_wrap_base,
                        row_start,
                        row_end,
                        y_base,
                        xs,
                        ys,
                    );
                }
                return;
            }
        }
        let _ = isa;
        let vals = &self.vals_unique[..];
        match &self.val_ind {
            ValInd::U8(ind) => crate::csr_du::spmv_ctl_range(
                self.du.ctl(),
                #[inline(always)]
                |j| vals[ind[j] as usize],
                ctl_range,
                val_start,
                row_wrap_base,
                row_start,
                row_end,
                y_base,
                x,
                y,
            ),
            ValInd::U16(ind) => crate::csr_du::spmv_ctl_range(
                self.du.ctl(),
                #[inline(always)]
                |j| vals[ind[j] as usize],
                ctl_range,
                val_start,
                row_wrap_base,
                row_start,
                row_end,
                y_base,
                x,
                y,
            ),
            ValInd::U32(ind) => crate::csr_du::spmv_ctl_range(
                self.du.ctl(),
                #[inline(always)]
                |j| vals[ind[j] as usize],
                ctl_range,
                val_start,
                row_wrap_base,
                row_start,
                row_end,
                y_base,
                x,
                y,
            ),
        }
    }

    /// SpMM twin of [`CsrDuVi::spmv_impl`]: dispatches on the value-index
    /// width, then on the panel width `k` (register accumulators for
    /// `k ∈ {1, 2, 4, 8}`), into the shared ctl decode loop.
    #[allow(clippy::too_many_arguments)]
    fn spmm_impl(
        &self,
        ctl_range: std::ops::Range<usize>,
        val_start: usize,
        row_wrap_base: usize,
        row_start: usize,
        row_end: usize,
        y_base: usize,
        x: &[V],
        k: usize,
        y: &mut [V],
    ) {
        self.spmm_impl_isa(
            crate::simd::selected(),
            ctl_range,
            val_start,
            row_wrap_base,
            row_start,
            row_end,
            y_base,
            x,
            k,
            y,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn spmm_impl_isa(
        &self,
        isa: crate::simd::Isa,
        ctl_range: std::ops::Range<usize>,
        val_start: usize,
        row_wrap_base: usize,
        row_start: usize,
        row_end: usize,
        y_base: usize,
        x: &[V],
        k: usize,
        y: &mut [V],
    ) {
        use crate::spmm::with_row_acc;
        #[cfg(target_arch = "x86_64")]
        if crate::simd::avx2_ok(isa)
            && matches!(k, 1 | 2 | 4 | 8)
            && self.ncols() <= i32::MAX as usize
        {
            use crate::simd::{as_f64s, as_f64s_mut, avx2};
            if let Some(src) = self.val_src() {
                let (xs, ys) = (as_f64s(x).expect("V is f64"), as_f64s_mut(y).expect("V is f64"));
                let ctl = self.du.ctl();
                // Safety: as on spmv_impl_isa's dispatch above.
                unsafe {
                    match k {
                        1 => avx2::du_ctl_k1(
                            ctl,
                            src,
                            ctl_range,
                            val_start,
                            row_wrap_base,
                            row_start,
                            row_end,
                            y_base,
                            xs,
                            ys,
                        ),
                        2 => avx2::du_ctl_k2(
                            ctl,
                            src,
                            ctl_range,
                            val_start,
                            row_wrap_base,
                            row_start,
                            row_end,
                            y_base,
                            xs,
                            ys,
                        ),
                        4 => avx2::du_ctl_k4(
                            ctl,
                            src,
                            ctl_range,
                            val_start,
                            row_wrap_base,
                            row_start,
                            row_end,
                            y_base,
                            xs,
                            ys,
                        ),
                        _ => avx2::du_ctl_k8(
                            ctl,
                            src,
                            ctl_range,
                            val_start,
                            row_wrap_base,
                            row_start,
                            row_end,
                            y_base,
                            xs,
                            ys,
                        ),
                    }
                }
                return;
            }
        }
        let _ = isa;
        let vals = &self.vals_unique[..];
        match &self.val_ind {
            ValInd::U8(ind) => with_row_acc!(k, acc => crate::csr_du::spmm_ctl_range(
                self.du.ctl(),
                #[inline(always)]
                |j| vals[ind[j] as usize],
                ctl_range.clone(),
                val_start,
                row_wrap_base,
                row_start,
                row_end,
                y_base,
                x,
                k,
                y,
                &mut acc,
            )),
            ValInd::U16(ind) => with_row_acc!(k, acc => crate::csr_du::spmm_ctl_range(
                self.du.ctl(),
                #[inline(always)]
                |j| vals[ind[j] as usize],
                ctl_range.clone(),
                val_start,
                row_wrap_base,
                row_start,
                row_end,
                y_base,
                x,
                k,
                y,
                &mut acc,
            )),
            ValInd::U32(ind) => with_row_acc!(k, acc => crate::csr_du::spmm_ctl_range(
                self.du.ctl(),
                #[inline(always)]
                |j| vals[ind[j] as usize],
                ctl_range.clone(),
                val_start,
                row_wrap_base,
                row_start,
                row_end,
                y_base,
                x,
                k,
                y,
                &mut acc,
            )),
        }
    }

    /// Rebuilds a CsrDu with materialized values (for reconstruction).
    fn du_with_values(&self) -> CsrDu<V> {
        let values: Vec<V> = (0..self.nnz).map(|j| self.vals_unique[self.val_ind.get(j)]).collect();
        self.du.clone().with_values(values)
    }
}

impl<V: Scalar> SpMv<V> for CsrDuVi<V> {
    fn nrows(&self) -> usize {
        self.du.nrows()
    }
    fn ncols(&self) -> usize {
        self.du.ncols()
    }
    fn nnz(&self) -> usize {
        self.nnz
    }
    fn kind(&self) -> FormatKind {
        FormatKind::CsrDuVi
    }
    fn size_bytes(&self) -> usize {
        CsrDuVi::size_bytes(self)
    }

    fn spmv(&self, x: &[V], y: &mut [V]) {
        assert_eq!(x.len(), self.ncols(), "x length must equal ncols");
        assert_eq!(y.len(), self.nrows(), "y length must equal nrows");
        self.spmv_impl(0..self.du.ctl().len(), 0, usize::MAX, 0, self.nrows(), 0, x, y);
    }

    fn validate(&self) -> std::result::Result<(), crate::error::SparseError> {
        use crate::error::SparseError;
        let (nnz, units) = self.du.validate_ctl_stream()?;
        if nnz != self.nnz {
            return Err(SparseError::InvalidFormat(format!(
                "ctl stream covers {nnz} non-zeros but header says {}",
                self.nnz
            )));
        }
        if units != self.du.units() {
            return Err(SparseError::InvalidFormat(format!(
                "ctl stream has {units} units but header says {}",
                self.du.units()
            )));
        }
        if self.val_ind.len() != self.nnz {
            return Err(SparseError::InvalidFormat(format!(
                "val_ind length {} != nnz {}",
                self.val_ind.len(),
                self.nnz
            )));
        }
        let uv = self.vals_unique.len();
        for j in 0..self.val_ind.len() {
            if self.val_ind.get(j) >= uv {
                return Err(SparseError::InvalidFormat(format!(
                    "value index {} at element {j} exceeds unique count {uv}",
                    self.val_ind.get(j)
                )));
            }
        }
        Ok(())
    }
}

impl<V: Scalar> crate::spmm::SpMm<V> for CsrDuVi<V> {
    fn spmm(&self, x: crate::DenseBlock<'_, V>, mut y: crate::DenseBlockMut<'_, V>) {
        let k = crate::spmm::assert_panel_shapes(self.nrows(), self.ncols(), &x, &y);
        self.spmm_impl(
            0..self.du.ctl().len(),
            0,
            usize::MAX,
            0,
            self.nrows(),
            0,
            x.data(),
            k,
            y.data_mut(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::examples::paper_matrix;

    fn build(coo: &Coo<f64>) -> CsrDuVi<f64> {
        CsrDuVi::from_csr(&coo.to_csr(), &DuOptions::default())
    }

    #[test]
    fn roundtrip_paper_matrix() {
        let csr = paper_matrix().to_csr();
        let duvi = CsrDuVi::from_csr(&csr, &DuOptions::default());
        assert_eq!(duvi.to_csr().unwrap(), csr);
        assert_eq!(duvi.unique_values(), 9);
    }

    #[test]
    fn spmv_matches_csr() {
        let coo = paper_matrix();
        let duvi = build(&coo);
        let x: Vec<f64> = (0..6).map(|i| (i as f64).sin() + 2.0).collect();
        let mut y0 = vec![0.0; 6];
        let mut y1 = vec![5.0; 6];
        coo.to_csr().spmv(&x, &mut y0);
        duvi.spmv(&x, &mut y1);
        assert_eq!(y0, y1);
    }

    #[test]
    fn compounds_both_reductions() {
        // Banded matrix with 3 unique values: DU shrinks indices to ~1 B,
        // VI shrinks values to 1 B -> total well under half of CSR.
        let n = 3000usize;
        let mut t = Vec::new();
        for i in 0..n {
            for d in 0..4usize {
                if i + d < n {
                    t.push((i, i + d, [1.0, 2.0, 3.0, 2.0][d]));
                }
            }
        }
        let coo = Coo::from_triplets(n, n, t).unwrap();
        let duvi = build(&coo);
        let r = duvi.size_report();
        assert!(r.reduction() > 0.6, "combined reduction {} too small", r.reduction());
    }

    #[test]
    fn spmv_via_splits_matches_serial() {
        let mut t = Vec::new();
        for i in 0..200usize {
            if i % 11 == 5 {
                continue;
            }
            for j in 0..(1 + i % 7) {
                t.push((i, (i * 3 + j * 41) % 300, ((i + j) % 4) as f64 + 0.5));
            }
        }
        let mut coo = Coo::from_triplets(200, 300, t).unwrap();
        coo.canonicalize();
        let duvi = build(&coo);
        let x: Vec<f64> = (0..300).map(|i| (i % 9) as f64 - 4.0).collect();
        let mut y_full = vec![0.0; 200];
        duvi.spmv(&x, &mut y_full);
        for nparts in [2, 3, 7] {
            let mut y = vec![1.0; 200];
            for s in duvi.splits(nparts) {
                duvi.spmv_split(&s, &x, &mut y);
            }
            assert_eq!(y, y_full, "nparts={nparts}");
        }
    }

    #[test]
    fn empty_matrix() {
        let coo: Coo<f64> = Coo::new(4, 4);
        let duvi = build(&coo);
        assert_eq!(duvi.nnz(), 0);
        let mut y = vec![1.0; 4];
        duvi.spmv(&[0.0; 4], &mut y);
        assert_eq!(y, vec![0.0; 4]);
    }
}
