//! Multi-vector SpMV — SpMM: `Y = A·X` for a panel of `k` right-hand
//! sides — and the [`DenseBlock`] panel views.
//!
//! ## Why SpMM exists in a compression paper's repo
//!
//! The paper's central trade is spending CPU cycles decoding compressed
//! indices (CSR-DU's ctl stream) and values (CSR-VI's `val_ind`) to save
//! memory traffic. With a single right-hand side each decoded element
//! feeds exactly one FMA; with a panel of `k` vectors the *same* decode
//! feeds `k` FMAs, so the decode cost is amortized `k`-fold while the
//! matrix traffic (the part compression shrinks) is unchanged. SpMM is
//! therefore the workload where compressed formats pull ahead soonest.
//!
//! ## The `DenseBlock` layout contract
//!
//! Panels are stored **row-major**: element `(r, v)` of an `n × k` panel
//! lives at `data[r * k + v]`. Column `v` of `X` is the `v`-th right-hand
//! side; all `k` values belonging to one matrix row/column are adjacent,
//! so one decoded column index `c` addresses the contiguous slice
//! `x[c*k .. c*k + k]` — one cache line for small `k`, which is exactly
//! what the register-blocked kernels rely on.
//!
//! ## Register blocking
//!
//! Every format's kernel is written once, generic over a [`RowAcc`]
//! row-accumulator. [`with_row_acc!`] dispatches on `k` at the call
//! boundary: `k ∈ {1, 2, 4, 8}` monomorphize with a fixed-size array
//! accumulator that lives in registers ([`FixedAcc`]); any other `k`
//! falls back to a heap-backed accumulator ([`DynAcc`]). The `k = 1`
//! instantiation performs the same floating-point operations in the same
//! order as the scalar SpMV kernels, so its result is bit-identical to
//! [`SpMv::spmv`].

use crate::error::SparseError;
use crate::scalar::Scalar;
use crate::spmv::SpMv;

/// An immutable row-major dense panel view: `rows × cols` values with
/// element `(r, v)` at `data[r * cols + v]`.
#[derive(Debug, Clone, Copy)]
pub struct DenseBlock<'a, V: Scalar = f64> {
    rows: usize,
    cols: usize,
    data: &'a [V],
}

impl<'a, V: Scalar> DenseBlock<'a, V> {
    /// Wraps a slice as a `rows × cols` row-major panel.
    ///
    /// Panics if `data.len() != rows * cols` — a view with a wrong length
    /// cannot be represented, so this is a programming error, not an
    /// input-shape error (those are [`SpMm::try_spmm`]'s job).
    pub fn new(rows: usize, cols: usize, data: &'a [V]) -> Self {
        assert_eq!(data.len(), rows * cols, "DenseBlock data must hold rows * cols elements");
        DenseBlock { rows, cols, data }
    }

    /// Number of panel rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of panel columns (`k`, the number of right-hand sides).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major storage.
    #[inline]
    pub fn data(&self) -> &'a [V] {
        self.data
    }

    /// One panel row: the `cols` values of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &'a [V] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies out one panel *column* (right-hand side `v`) as a contiguous
    /// vector — the shape a single-vector [`SpMv::spmv`] call consumes.
    /// Used by differential tests and the per-column fallback paths.
    pub fn column(&self, v: usize) -> Vec<V> {
        assert!(v < self.cols, "column {v} out of bounds for {} columns", self.cols);
        (0..self.rows).map(|r| self.data[r * self.cols + v]).collect()
    }
}

/// A mutable row-major dense panel view (same layout as [`DenseBlock`]).
#[derive(Debug)]
pub struct DenseBlockMut<'a, V: Scalar = f64> {
    rows: usize,
    cols: usize,
    data: &'a mut [V],
}

impl<'a, V: Scalar> DenseBlockMut<'a, V> {
    /// Wraps a mutable slice as a `rows × cols` row-major panel.
    ///
    /// Panics if `data.len() != rows * cols` (see [`DenseBlock::new`]).
    pub fn new(rows: usize, cols: usize, data: &'a mut [V]) -> Self {
        assert_eq!(data.len(), rows * cols, "DenseBlockMut data must hold rows * cols elements");
        DenseBlockMut { rows, cols, data }
    }

    /// Number of panel rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of panel columns (`k`).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major storage.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [V] {
        self.data
    }

    /// Reborrows as a shorter-lived mutable view (lets a caller pass the
    /// panel to [`SpMm::spmm`] repeatedly without giving it up).
    #[inline]
    pub fn reborrow(&mut self) -> DenseBlockMut<'_, V> {
        DenseBlockMut { rows: self.rows, cols: self.cols, data: self.data }
    }

    /// An immutable view of the same panel.
    #[inline]
    pub fn as_block(&self) -> DenseBlock<'_, V> {
        DenseBlock { rows: self.rows, cols: self.cols, data: self.data }
    }
}

/// Sparse matrix × dense panel multiplication: `Y = A·X` where `X` is
/// `ncols × k` and `Y` is `nrows × k`, both row-major ([`DenseBlock`]).
///
/// Implemented by the four paper formats (CSR, CSR-DU, CSR-VI,
/// CSR-DU-VI). Each implementation decodes every unit/row **once** and
/// broadcasts the decoded scalar across a `k`-wide inner loop; `k = 1`
/// degenerates to [`SpMv::spmv`] bit-for-bit.
pub trait SpMm<V: Scalar = f64>: SpMv<V> {
    /// Computes `Y = A·X`. Panics when the panel shapes disagree with the
    /// matrix (`x.rows() != ncols`, `y.rows() != nrows`,
    /// `x.cols() != y.cols()`) or `x.cols() == 0`. `Y` is fully
    /// overwritten.
    fn spmm(&self, x: DenseBlock<'_, V>, y: DenseBlockMut<'_, V>);

    /// Checked SpMM: returns [`SparseError::DimensionMismatch`] for
    /// mismatched panel shapes (and [`SparseError::InvalidArgument`] for
    /// an empty `k = 0` panel) instead of panicking — the entry point for
    /// panels built from untrusted or dynamic sources, mirroring
    /// [`SpMv::try_spmv`].
    fn try_spmm(&self, x: DenseBlock<'_, V>, y: DenseBlockMut<'_, V>) -> Result<(), SparseError> {
        if x.cols() != y.cols() {
            return Err(SparseError::DimensionMismatch(format!(
                "x panel has {} columns but y panel has {} for {} SpMM",
                x.cols(),
                y.cols(),
                self.kind()
            )));
        }
        if x.cols() == 0 {
            return Err(SparseError::InvalidArgument(
                "SpMM needs at least one right-hand side (k >= 1)".into(),
            ));
        }
        if x.rows() != self.ncols() {
            return Err(SparseError::DimensionMismatch(format!(
                "x panel rows {} != ncols {} for {} SpMM",
                x.rows(),
                self.ncols(),
                self.kind()
            )));
        }
        if y.rows() != self.nrows() {
            return Err(SparseError::DimensionMismatch(format!(
                "y panel rows {} != nrows {} for {} SpMM",
                y.rows(),
                self.nrows(),
                self.kind()
            )));
        }
        self.spmm(x, y);
        Ok(())
    }
}

/// Asserts the panel shapes of a `spmm` call against the matrix
/// dimensions and returns `k`. Shared preamble of every [`SpMm`]
/// implementation (the checked path is [`SpMm::try_spmm`]).
pub(crate) fn assert_panel_shapes<V: Scalar>(
    nrows: usize,
    ncols: usize,
    x: &DenseBlock<'_, V>,
    y: &DenseBlockMut<'_, V>,
) -> usize {
    assert_eq!(x.cols(), y.cols(), "x and y panels must have the same number of columns");
    let k = x.cols();
    assert!(k >= 1, "need at least one right-hand side");
    assert_eq!(x.rows(), ncols, "x panel rows must equal ncols");
    assert_eq!(y.rows(), nrows, "y panel rows must equal nrows");
    k
}

/// A `k`-wide row accumulator: the register-blocking abstraction every
/// SpMM kernel is written against. One accumulator covers one output row
/// panel `y[row*k .. row*k + k]`; the kernel calls [`RowAcc::reset`] at
/// row start, [`RowAcc::fma`] once per non-zero (broadcasting the decoded
/// matrix scalar across the `k`-wide x-row), and [`RowAcc::store`] on row
/// end — the SpMM generalization of the paper's §VI-A register
/// accumulator, preserving its store-once-per-row property.
pub(crate) trait RowAcc<V: Scalar> {
    /// The panel width this accumulator covers.
    fn k(&self) -> usize;
    /// Zeroes the accumulator (row start).
    fn reset(&mut self);
    /// `acc[v] += a * x_row[v]` for `v in 0..k`.
    fn fma(&mut self, a: V, x_row: &[V]);
    /// Writes the accumulated row panel to `y_row[..k]`.
    fn store(&self, y_row: &mut [V]);
}

/// Fixed-width accumulator: a `[V; K]` the compiler keeps in registers
/// for small `K`. The `K = 1` instantiation performs exactly the scalar
/// kernels' operations, which is what makes `k = 1` bit-identical.
pub(crate) struct FixedAcc<V: Scalar, const K: usize> {
    acc: [V; K],
}

impl<V: Scalar, const K: usize> FixedAcc<V, K> {
    #[inline(always)]
    pub(crate) fn new() -> Self {
        FixedAcc { acc: [V::zero(); K] }
    }
}

impl<V: Scalar, const K: usize> RowAcc<V> for FixedAcc<V, K> {
    #[inline(always)]
    fn k(&self) -> usize {
        K
    }

    #[inline(always)]
    fn reset(&mut self) {
        self.acc = [V::zero(); K];
    }

    #[inline(always)]
    fn fma(&mut self, a: V, x_row: &[V]) {
        let x_row = &x_row[..K]; // one bounds check, then a fixed-trip loop
        for (accv, &xv) in self.acc.iter_mut().zip(x_row) {
            *accv += a * xv;
        }
    }

    #[inline(always)]
    fn store(&self, y_row: &mut [V]) {
        y_row[..K].copy_from_slice(&self.acc);
    }
}

/// Heap-backed accumulator for arbitrary `k` — the generic fallback when
/// `k` is not one of the specialized widths. Allocated once per kernel
/// call, not per row.
pub(crate) struct DynAcc<V: Scalar> {
    acc: Vec<V>,
}

impl<V: Scalar> DynAcc<V> {
    #[inline]
    pub(crate) fn new(k: usize) -> Self {
        DynAcc { acc: vec![V::zero(); k] }
    }
}

impl<V: Scalar> RowAcc<V> for DynAcc<V> {
    #[inline(always)]
    fn k(&self) -> usize {
        self.acc.len()
    }

    #[inline(always)]
    fn reset(&mut self) {
        for v in &mut self.acc {
            *v = V::zero();
        }
    }

    #[inline(always)]
    fn fma(&mut self, a: V, x_row: &[V]) {
        for (o, &xv) in self.acc.iter_mut().zip(x_row) {
            *o += a * xv;
        }
    }

    #[inline(always)]
    fn store(&self, y_row: &mut [V]) {
        y_row[..self.acc.len()].copy_from_slice(&self.acc);
    }
}

/// Dispatches a kernel body on the panel width `k`: the widths
/// `{1, 2, 4, 8}` bind `$acc` to a monomorphized [`FixedAcc`] (register
/// blocking), every other width to a [`DynAcc`]. The body is instantiated
/// once per arm, so each fast path compiles to a fixed-trip inner loop.
macro_rules! with_row_acc {
    ($k:expr, $acc:ident => $body:expr) => {
        match $k {
            1 => {
                let mut $acc = $crate::spmm::FixedAcc::<_, 1>::new();
                $body
            }
            2 => {
                let mut $acc = $crate::spmm::FixedAcc::<_, 2>::new();
                $body
            }
            4 => {
                let mut $acc = $crate::spmm::FixedAcc::<_, 4>::new();
                $body
            }
            8 => {
                let mut $acc = $crate::spmm::FixedAcc::<_, 8>::new();
                $body
            }
            k => {
                let mut $acc = $crate::spmm::DynAcc::new(k);
                $body
            }
        }
    };
}
pub(crate) use with_row_acc;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::paper_matrix;
    use crate::Csr;

    #[test]
    fn dense_block_views_index_row_major() {
        let data: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let b = DenseBlock::new(4, 3, &data);
        assert_eq!(b.rows(), 4);
        assert_eq!(b.cols(), 3);
        assert_eq!(b.row(2), &[6.0, 7.0, 8.0]);
        assert_eq!(b.column(1), vec![1.0, 4.0, 7.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "rows * cols")]
    fn dense_block_rejects_wrong_length() {
        let data = vec![0.0f64; 5];
        let _ = DenseBlock::new(2, 3, &data);
    }

    #[test]
    fn accumulators_agree() {
        // FixedAcc<4> and DynAcc(4) run the same FMA sequence.
        let a = [0.5f64, -1.25, 2.0];
        let xr = [[1.0, 2.0, 3.0, 4.0], [0.1, 0.2, 0.3, 0.4], [-1.0, 0.0, 1.0, 2.0]];
        let mut fixed = FixedAcc::<f64, 4>::new();
        let mut dynamic = DynAcc::<f64>::new(4);
        fixed.reset();
        dynamic.reset();
        for (av, row) in a.iter().zip(&xr) {
            fixed.fma(*av, row);
            dynamic.fma(*av, row);
        }
        let mut y_f = [0.0; 4];
        let mut y_d = [0.0; 4];
        fixed.store(&mut y_f);
        dynamic.store(&mut y_d);
        assert_eq!(y_f, y_d);
        assert_eq!(RowAcc::<f64>::k(&fixed), 4);
        assert_eq!(RowAcc::<f64>::k(&dynamic), 4);
    }

    #[test]
    fn try_spmm_rejects_each_mismatch_arm() {
        let csr: Csr = paper_matrix().to_csr();
        let m: &dyn SpMm<f64> = &csr;

        // x.cols != y.cols
        let x = vec![1.0; 6 * 2];
        let mut y = vec![0.0; 6 * 3];
        let err =
            m.try_spmm(DenseBlock::new(6, 2, &x), DenseBlockMut::new(6, 3, &mut y)).unwrap_err();
        assert!(matches!(err, SparseError::DimensionMismatch(_)), "{err}");

        // k = 0
        let x0: Vec<f64> = Vec::new();
        let mut y0: Vec<f64> = Vec::new();
        let err =
            m.try_spmm(DenseBlock::new(6, 0, &x0), DenseBlockMut::new(6, 0, &mut y0)).unwrap_err();
        assert!(matches!(err, SparseError::InvalidArgument(_)), "{err}");

        // x.rows != ncols
        let x = vec![1.0; 5 * 2];
        let mut y = vec![0.0; 6 * 2];
        let err =
            m.try_spmm(DenseBlock::new(5, 2, &x), DenseBlockMut::new(6, 2, &mut y)).unwrap_err();
        assert!(matches!(err, SparseError::DimensionMismatch(_)), "{err}");

        // y.rows != nrows
        let x = vec![1.0; 6 * 2];
        let mut y = vec![0.0; 5 * 2];
        let err =
            m.try_spmm(DenseBlock::new(6, 2, &x), DenseBlockMut::new(5, 2, &mut y)).unwrap_err();
        assert!(matches!(err, SparseError::DimensionMismatch(_)), "{err}");

        // Correct shapes succeed and match the panicking entry point.
        let x = vec![1.0; 6 * 2];
        let mut y = vec![0.0; 6 * 2];
        let mut y_ref = vec![0.0; 6 * 2];
        m.spmm(DenseBlock::new(6, 2, &x), DenseBlockMut::new(6, 2, &mut y_ref));
        m.try_spmm(DenseBlock::new(6, 2, &x), DenseBlockMut::new(6, 2, &mut y)).unwrap();
        assert_eq!(y, y_ref);
    }
}
