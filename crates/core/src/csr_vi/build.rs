//! CSR → CSR-VI construction: hash-based value deduplication.

use super::{CsrVi, ValInd};
use crate::csr::Csr;
use crate::index::SpIndex;
use crate::scalar::Scalar;
use std::collections::HashMap;

/// Deduplicates a value array by *canonical* bit pattern, returning the
/// unique-value table (first-occurrence order) and the width-narrowed
/// per-element indices. Shared by CSR-VI and CSR-DU-VI construction.
///
/// Canonicalization rules:
///
/// * Distinct bit patterns are distinct values — in particular `-0.0` and
///   `+0.0` stay separate (conflating them would change results:
///   `1.0 / -0.0 == -inf`), exactly what a byte-level compressor would do.
/// * **Except** NaNs: every NaN, regardless of payload bits, maps to one
///   canonical NaN table slot. Arithmetic cannot distinguish NaN payloads
///   (any NaN operand yields NaN), but an adversarial or bit-rotted input
///   with per-element NaN payloads would otherwise explode the unique
///   table to `nnz` entries and destroy the format's entire premise.
pub(crate) fn dedup_values<V: Scalar>(values: &[V]) -> (Vec<V>, ValInd) {
    // First pass: assign each canonical bit pattern an id in
    // first-occurrence order and record the id of every element. Ids are
    // provisionally u32; matrices with more than 2^32 distinct values are
    // not supported (they could not profit from CSR-VI anyway).
    let canonical_nan = V::from_f64(f64::NAN);
    let mut table: HashMap<V::Bits, u32> = HashMap::new();
    let mut vals_unique: Vec<V> = Vec::new();
    let mut wide: Vec<u32> = Vec::with_capacity(values.len());
    for &v in values {
        let (key_val, stored) =
            if v.to_f64().is_nan() { (canonical_nan, canonical_nan) } else { (v, v) };
        let next_id = u32::try_from(vals_unique.len())
            .expect("more than 2^32 unique values cannot be indexed");
        let id = *table.entry(key_val.to_bits()).or_insert_with(|| {
            vals_unique.push(stored);
            next_id
        });
        wide.push(id);
    }

    // Second pass: narrow the id array to the width chosen by uv (§V):
    // uv <= 2^8 -> u8, <= 2^16 -> u16, else u32. Every id is < uv, so the
    // narrowing casts below are lossless by the branch condition.
    let uv = vals_unique.len();
    let val_ind = if uv <= (1 << 8) {
        ValInd::U8(wide.iter().map(|&i| i as u8).collect())
    } else if uv <= (1 << 16) {
        ValInd::U16(wide.iter().map(|&i| i as u16).collect())
    } else {
        ValInd::U32(wide)
    };
    (vals_unique, val_ind)
}

pub(super) fn build<I: SpIndex, V: Scalar>(csr: &Csr<I, V>) -> CsrVi<I, V> {
    let (vals_unique, val_ind) = dedup_values(csr.values());
    CsrVi {
        nrows: csr.nrows(),
        ncols: csr.ncols(),
        row_ptr: csr.row_ptr().to_vec(),
        col_ind: csr.col_ind().to_vec(),
        vals_unique,
        val_ind,
    }
}
