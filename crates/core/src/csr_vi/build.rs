//! CSR → CSR-VI construction: hash-based value deduplication.

use super::{CsrVi, ValInd};
use crate::csr::Csr;
use crate::index::SpIndex;
use crate::scalar::Scalar;
use std::collections::HashMap;

pub(super) fn build<I: SpIndex, V: Scalar>(csr: &Csr<I, V>) -> CsrVi<I, V> {
    // First pass: assign each distinct bit pattern an id in first-occurrence
    // order and record the id of every element. Ids are provisionally u32;
    // matrices with more than 2^32 distinct values are not supported (they
    // could not profit from CSR-VI anyway).
    let mut table: HashMap<V::Bits, u32> = HashMap::new();
    let mut vals_unique: Vec<V> = Vec::new();
    let mut wide: Vec<u32> = Vec::with_capacity(csr.nnz());
    for &v in csr.values() {
        let next_id = vals_unique.len() as u32;
        let id = *table.entry(v.to_bits()).or_insert_with(|| {
            vals_unique.push(v);
            next_id
        });
        wide.push(id);
    }
    assert!(
        vals_unique.len() <= u32::MAX as usize,
        "more than 2^32 unique values cannot be indexed"
    );

    // Second pass: narrow the id array to the width chosen by uv (§V):
    // uv <= 2^8 -> u8, <= 2^16 -> u16, else u32.
    let uv = vals_unique.len();
    let val_ind = if uv <= (1 << 8) {
        ValInd::U8(wide.iter().map(|&i| i as u8).collect())
    } else if uv <= (1 << 16) {
        ValInd::U16(wide.iter().map(|&i| i as u16).collect())
    } else {
        ValInd::U32(wide)
    };

    CsrVi {
        nrows: csr.nrows(),
        ncols: csr.ncols(),
        row_ptr: csr.row_ptr().to_vec(),
        col_ind: csr.col_ind().to_vec(),
        vals_unique,
        val_ind,
    }
}
