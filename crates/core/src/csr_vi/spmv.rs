//! The CSR-VI SpMV kernel (Fig. 5 of the paper): CSR's kernel with the
//! direct value load replaced by an indirection through `vals_unique`.
//! Specialized per index width so the inner loop stays monomorphic.
//!
//! The SpMM variant ([`spmm_rows`]) additionally specializes per panel
//! width through the [`RowAcc`] accumulator: each `val_ind` entry is
//! resolved through the unique-value table **once** and the value
//! broadcast across `k` FMAs, amortizing the indirection.

use super::{CsrVi, ValInd};
use crate::index::SpIndex;
use crate::scalar::Scalar;
use crate::simd::Isa;
use crate::spmm::{with_row_acc, RowAcc};

/// Palette value source for the AVX2 kernels, when `V` is `f64` and the
/// unique-value table fits the i32 gather lanes.
#[cfg(target_arch = "x86_64")]
fn val_src<'a, V: Scalar>(
    vals_unique: &'a [V],
    val_ind: &'a ValInd,
) -> Option<crate::simd::avx2::ValSrc<'a>> {
    use crate::simd::avx2::ValSrc;
    let pal = crate::simd::as_f64s(vals_unique)?;
    if pal.len() > i32::MAX as usize {
        return None;
    }
    Some(match val_ind {
        ValInd::U8(ind) => ValSrc::Pal8(pal, ind),
        ValInd::U16(ind) => ValSrc::Pal16(pal, ind),
        ValInd::U32(ind) => ValSrc::Pal32(pal, ind),
    })
}

/// Row-range kernel. `y_base` is subtracted from the row number when
/// indexing `y`, so parallel drivers can pass disjoint local slices
/// (`y_base = row_begin`); serial callers pass the full `y` and 0.
/// `isa` is the pre-selected kernel ISA (unavailable choices degrade to
/// the scalar path).
pub(super) fn spmv_rows<I: SpIndex, V: Scalar>(
    m: &CsrVi<I, V>,
    isa: Isa,
    row_begin: usize,
    row_end: usize,
    y_base: usize,
    x: &[V],
    y: &mut [V],
) {
    debug_assert!(row_end <= m.nrows());
    debug_assert_eq!(x.len(), m.ncols());
    #[cfg(target_arch = "x86_64")]
    if crate::simd::avx2_ok(isa) && m.ncols() <= i32::MAX as usize {
        use crate::simd::{as_f64s, as_f64s_mut, as_u32s, avx2};
        if let (Some(rp), Some(ci), Some(src)) =
            (as_u32s(&m.row_ptr), as_u32s(&m.col_ind), val_src(&m.vals_unique, &m.val_ind))
        {
            let (xs, ys) = (as_f64s(x).expect("V is f64"), as_f64s_mut(y).expect("V is f64"));
            // Safety: AVX2 verified by avx2_ok; CSR-VI structure gives
            // in-bounds columns and in-table value indices; ncols and the
            // table length fit the i32 gather lanes.
            unsafe { avx2::rows_k1(rp, ci, src, row_begin, row_end, y_base, xs, ys) };
            return;
        }
    }
    let _ = isa;
    match &m.val_ind {
        ValInd::U8(ind) => {
            kernel(&m.row_ptr, &m.col_ind, &m.vals_unique, ind, row_begin, row_end, y_base, x, y)
        }
        ValInd::U16(ind) => {
            kernel(&m.row_ptr, &m.col_ind, &m.vals_unique, ind, row_begin, row_end, y_base, x, y)
        }
        ValInd::U32(ind) => {
            kernel(&m.row_ptr, &m.col_ind, &m.vals_unique, ind, row_begin, row_end, y_base, x, y)
        }
    }
}

/// Width-generic inner kernel; `W` is the value-index element type.
#[allow(clippy::too_many_arguments)]
#[inline]
fn kernel<I: SpIndex, V: Scalar, W: Copy + Into<u32>>(
    row_ptr: &[I],
    col_ind: &[I],
    vals_unique: &[V],
    val_ind: &[W],
    row_begin: usize,
    row_end: usize,
    y_base: usize,
    x: &[V],
    y: &mut [V],
) {
    for i in row_begin..row_end {
        let lo = row_ptr[i].index();
        let hi = row_ptr[i + 1].index();
        let mut acc = V::zero();
        for j in lo..hi {
            let val = vals_unique[Into::<u32>::into(val_ind[j]) as usize];
            acc += val * x[col_ind[j].index()];
        }
        y[i - y_base] = acc;
    }
}

/// SpMM row-range kernel: `x`/`y` are row-major panels of width `k`
/// (`y[(i - y_base) * k ..][..k]` receives row `i`). Width-dispatched on
/// both the value-index type and the panel width.
#[allow(clippy::too_many_arguments)]
pub(super) fn spmm_rows<I: SpIndex, V: Scalar>(
    m: &CsrVi<I, V>,
    isa: Isa,
    row_begin: usize,
    row_end: usize,
    y_base: usize,
    x: &[V],
    k: usize,
    y: &mut [V],
) {
    debug_assert!(row_end <= m.nrows());
    debug_assert_eq!(x.len(), m.ncols() * k);
    #[cfg(target_arch = "x86_64")]
    if crate::simd::avx2_ok(isa) && matches!(k, 1 | 2 | 4 | 8) && m.ncols() <= i32::MAX as usize {
        use crate::simd::{as_f64s, as_f64s_mut, as_u32s, avx2};
        if let (Some(rp), Some(ci), Some(src)) =
            (as_u32s(&m.row_ptr), as_u32s(&m.col_ind), val_src(&m.vals_unique, &m.val_ind))
        {
            let (xs, ys) = (as_f64s(x).expect("V is f64"), as_f64s_mut(y).expect("V is f64"));
            // Safety: as on the spmv_rows dispatch above.
            unsafe {
                match k {
                    1 => avx2::rows_k1(rp, ci, src, row_begin, row_end, y_base, xs, ys),
                    2 => avx2::rows_k2(rp, ci, src, row_begin, row_end, y_base, xs, ys),
                    4 => avx2::rows_k4(rp, ci, src, row_begin, row_end, y_base, xs, ys),
                    _ => avx2::rows_k8(rp, ci, src, row_begin, row_end, y_base, xs, ys),
                }
            }
            return;
        }
    }
    let _ = isa;
    match &m.val_ind {
        ValInd::U8(ind) => with_row_acc!(k, acc => kernel_mm(
            &m.row_ptr, &m.col_ind, &m.vals_unique, ind, row_begin, row_end, y_base, x, k, y,
            &mut acc,
        )),
        ValInd::U16(ind) => with_row_acc!(k, acc => kernel_mm(
            &m.row_ptr, &m.col_ind, &m.vals_unique, ind, row_begin, row_end, y_base, x, k, y,
            &mut acc,
        )),
        ValInd::U32(ind) => with_row_acc!(k, acc => kernel_mm(
            &m.row_ptr, &m.col_ind, &m.vals_unique, ind, row_begin, row_end, y_base, x, k, y,
            &mut acc,
        )),
    }
}

/// Width- and accumulator-generic SpMM inner kernel. The `k = 1`
/// instantiation performs exactly [`kernel`]'s operations in the same
/// order (bit-identical results).
#[allow(clippy::too_many_arguments)]
#[inline]
fn kernel_mm<I: SpIndex, V: Scalar, W: Copy + Into<u32>, A: RowAcc<V>>(
    row_ptr: &[I],
    col_ind: &[I],
    vals_unique: &[V],
    val_ind: &[W],
    row_begin: usize,
    row_end: usize,
    y_base: usize,
    x: &[V],
    k: usize,
    y: &mut [V],
    acc: &mut A,
) {
    for i in row_begin..row_end {
        let lo = row_ptr[i].index();
        let hi = row_ptr[i + 1].index();
        acc.reset();
        for j in lo..hi {
            let val = vals_unique[Into::<u32>::into(val_ind[j]) as usize];
            let c = col_ind[j].index();
            acc.fma(val, &x[c * k..c * k + k]);
        }
        let base = (i - y_base) * k;
        acc.store(&mut y[base..base + k]);
    }
}
