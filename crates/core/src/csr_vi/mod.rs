//! CSR-VI ("CSR Value Index") — the paper's value-compression format (§V).
//!
//! Value data carries no inherent redundancy in general, but many real
//! matrices contain few *unique* values (quantized coefficients, unit
//! stiffness entries, adjacency weights…). CSR-VI replaces the `values`
//! array of CSR with:
//!
//! * `vals_unique` — each distinct value bit-pattern, stored once;
//! * `val_ind` — for each non-zero, the index of its value in
//!   `vals_unique`, stored at the narrowest width that addresses all
//!   unique values (u8 if `uv ≤ 2^8`, u16 if `uv ≤ 2^16`, else u32).
//!
//! The SpMV kernel replaces the direct `values[j]` load with the indirect
//! `vals_unique[val_ind[j]]`. When `uv` is small, `vals_unique` stays
//! cache-resident and the per-element traffic drops from 8 value bytes to
//! 1-2 index bytes.
//!
//! Applicability is gated by the **total-to-unique ratio** `ttu = nnz/uv`;
//! the paper uses the empirical criterion `ttu > 5` (§VI-E).

pub(crate) mod build;
mod spmv;

use crate::csr::Csr;
use crate::error::Result;
use crate::index::SpIndex;
use crate::scalar::Scalar;
use crate::spmv::{FormatKind, SpMv};
use crate::stats::SizeReport;

/// The paper's empirical applicability threshold for CSR-VI (§VI-E).
pub const TTU_THRESHOLD: f64 = 5.0;

/// Width-specialized storage of the per-element value indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValInd {
    /// `uv ≤ 2^8` unique values.
    U8(Vec<u8>),
    /// `2^8 < uv ≤ 2^16`.
    U16(Vec<u16>),
    /// `2^16 < uv ≤ 2^32`.
    U32(Vec<u32>),
}

impl ValInd {
    /// Number of per-element indices (== nnz).
    pub fn len(&self) -> usize {
        match self {
            ValInd::U8(v) => v.len(),
            ValInd::U16(v) => v.len(),
            ValInd::U32(v) => v.len(),
        }
    }

    /// `true` if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes per stored index.
    pub fn width_bytes(&self) -> usize {
        match self {
            ValInd::U8(_) => 1,
            ValInd::U16(_) => 2,
            ValInd::U32(_) => 4,
        }
    }

    /// Total bytes of the index array.
    pub fn size_bytes(&self) -> usize {
        self.len() * self.width_bytes()
    }

    /// Index of element `j` (slow path, for tests/reconstruction).
    pub fn get(&self, j: usize) -> usize {
        match self {
            ValInd::U8(v) => v[j] as usize,
            ValInd::U16(v) => v[j] as usize,
            ValInd::U32(v) => v[j] as usize,
        }
    }
}

/// A sparse matrix in CSR-VI format.
///
/// Structure arrays (`row_ptr`, `col_ind`) are identical to CSR's; only
/// the value storage differs.
///
/// ```
/// use spmv_core::csr_vi::CsrVi;
///
/// let csr = spmv_core::examples::paper_matrix().to_csr();
/// let vi = CsrVi::from_csr(&csr);
/// // Fig. 4 of the paper: 9 unique values, 1-byte indices.
/// assert_eq!(vi.unique_values(), 9);
/// assert_eq!(vi.val_ind().width_bytes(), 1);
/// // The paper's applicability gate: ttu = 16/9 < 5, so not recommended.
/// assert!(!vi.is_profitable());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrVi<I: SpIndex = u32, V: Scalar = f64> {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<I>,
    col_ind: Vec<I>,
    vals_unique: Vec<V>,
    val_ind: ValInd,
}

impl<I: SpIndex, V: Scalar> CsrVi<I, V> {
    /// Builds CSR-VI from CSR. `O(nnz)` using a hash table over value bit
    /// patterns, as in the paper (§V).
    pub fn from_csr(csr: &Csr<I, V>) -> CsrVi<I, V> {
        build::build(csr)
    }

    /// Rebuilds CSR-VI from untrusted parts (e.g. a deserialized
    /// container): validates the CSR structure invariants, the value-index
    /// length and that every value index addresses the unique table.
    pub fn from_parts_checked(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<I>,
        col_ind: Vec<I>,
        vals_unique: Vec<V>,
        val_ind: ValInd,
    ) -> Result<CsrVi<I, V>> {
        // Validate structure by constructing a CSR with dummy values.
        let nnz = col_ind.len();
        let dummy = vec![V::zero(); nnz];
        let csr = Csr::from_raw_parts(nrows, ncols, row_ptr, col_ind, dummy)?;
        if val_ind.len() != nnz {
            return Err(crate::error::SparseError::InvalidFormat(format!(
                "val_ind length {} != nnz {nnz}",
                val_ind.len()
            )));
        }
        let uv = vals_unique.len();
        for j in 0..val_ind.len() {
            if val_ind.get(j) >= uv {
                return Err(crate::error::SparseError::InvalidFormat(format!(
                    "value index {} at element {j} exceeds unique count {uv}",
                    val_ind.get(j)
                )));
            }
        }
        let (row_ptr, col_ind) = (csr.row_ptr().to_vec(), csr.col_ind().to_vec());
        Ok(CsrVi { nrows, ncols, row_ptr, col_ind, vals_unique, val_ind })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.val_ind.len()
    }

    /// The row-pointer array.
    pub fn row_ptr(&self) -> &[I] {
        &self.row_ptr
    }

    /// The column-index array.
    pub fn col_ind(&self) -> &[I] {
        &self.col_ind
    }

    /// The unique-value table (first-occurrence order).
    pub fn vals_unique(&self) -> &[V] {
        &self.vals_unique
    }

    /// The per-element value indices.
    pub fn val_ind(&self) -> &ValInd {
        &self.val_ind
    }

    /// Number of unique values (`uv`).
    pub fn unique_values(&self) -> usize {
        self.vals_unique.len()
    }

    /// Total-to-unique values ratio (§VI-E).
    pub fn ttu(&self) -> f64 {
        if self.nnz() == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.unique_values() as f64
        }
    }

    /// `true` if the paper's `ttu > 5` criterion recommends this format.
    pub fn is_profitable(&self) -> bool {
        self.ttu() > TTU_THRESHOLD
    }

    /// Reconstructs plain CSR (lossless).
    pub fn to_csr(&self) -> Result<Csr<I, V>> {
        let values: Vec<V> =
            (0..self.nnz()).map(|j| self.vals_unique[self.val_ind.get(j)]).collect();
        Csr::from_raw_parts(
            self.nrows,
            self.ncols,
            self.row_ptr.clone(),
            self.col_ind.clone(),
            values,
        )
    }

    /// Bytes streamed per SpMV: structure + value indices + unique table.
    pub fn size_bytes(&self) -> usize {
        (self.nrows + 1) * I::BYTES
            + self.nnz() * I::BYTES
            + self.val_ind.size_bytes()
            + self.vals_unique.len() * V::BYTES
    }

    /// Size comparison against the CSR baseline with the same index width.
    pub fn size_report(&self) -> SizeReport {
        SizeReport {
            csr_bytes: self.nnz() * (I::BYTES + V::BYTES) + (self.nrows + 1) * I::BYTES,
            compressed_bytes: self.size_bytes(),
        }
    }

    /// SpMV over the half-open row range `[row_begin, row_end)` — the
    /// multithreaded building block. The paper notes the MT version is
    /// "trivially derived" by giving each thread its first and last row.
    pub fn spmv_rows(&self, row_begin: usize, row_end: usize, x: &[V], y: &mut [V]) {
        spmv::spmv_rows(self, crate::simd::selected(), row_begin, row_end, 0, x, y);
    }

    /// Like [`CsrVi::spmv_rows`], but writes into a local slice whose
    /// element 0 corresponds to `row_begin` (for parallel drivers).
    pub fn spmv_rows_local(&self, row_begin: usize, row_end: usize, x: &[V], y_local: &mut [V]) {
        self.spmv_rows_local_isa(crate::simd::selected(), row_begin, row_end, x, y_local);
    }

    /// [`CsrVi::spmv_rows_local`] with an explicit, pre-selected
    /// [`crate::simd::Isa`] — for parallel plans that snapshot the ISA at
    /// construction. An unavailable ISA degrades to the scalar path.
    pub fn spmv_rows_local_isa(
        &self,
        isa: crate::simd::Isa,
        row_begin: usize,
        row_end: usize,
        x: &[V],
        y_local: &mut [V],
    ) {
        debug_assert_eq!(y_local.len(), row_end - row_begin);
        spmv::spmv_rows(self, isa, row_begin, row_end, row_begin, x, y_local);
    }

    /// SpMM over the half-open row range `[row_begin, row_end)`, writing
    /// into a local row-major panel whose row 0 corresponds to `row_begin`
    /// — the multi-vector analogue of [`CsrVi::spmv_rows_local`]. Each
    /// value-table indirection is resolved once per non-zero and broadcast
    /// across the `k`-wide accumulator (`k = 1` is bit-identical to SpMV).
    pub fn spmm_rows_local(
        &self,
        row_begin: usize,
        row_end: usize,
        x: &[V],
        k: usize,
        y_local: &mut [V],
    ) {
        self.spmm_rows_local_isa(crate::simd::selected(), row_begin, row_end, x, k, y_local);
    }

    /// [`CsrVi::spmm_rows_local`] with an explicit, pre-selected
    /// [`crate::simd::Isa`] (see [`CsrVi::spmv_rows_local_isa`]).
    pub fn spmm_rows_local_isa(
        &self,
        isa: crate::simd::Isa,
        row_begin: usize,
        row_end: usize,
        x: &[V],
        k: usize,
        y_local: &mut [V],
    ) {
        debug_assert_eq!(y_local.len(), (row_end - row_begin) * k);
        spmv::spmm_rows(self, isa, row_begin, row_end, row_begin, x, k, y_local);
    }
}

impl<I: SpIndex, V: Scalar> SpMv<V> for CsrVi<I, V> {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn nnz(&self) -> usize {
        self.val_ind.len()
    }
    fn kind(&self) -> FormatKind {
        FormatKind::CsrVi
    }
    fn size_bytes(&self) -> usize {
        CsrVi::size_bytes(self)
    }

    fn spmv(&self, x: &[V], y: &mut [V]) {
        assert_eq!(x.len(), self.ncols, "x length must equal ncols");
        assert_eq!(y.len(), self.nrows, "y length must equal nrows");
        spmv::spmv_rows(self, crate::simd::selected(), 0, self.nrows, 0, x, y);
    }

    fn validate(&self) -> std::result::Result<(), crate::error::SparseError> {
        use crate::error::SparseError;
        crate::csr::check_csr_structure(
            self.nrows,
            self.ncols,
            &self.row_ptr,
            &self.col_ind,
            self.val_ind.len(),
        )?;
        let uv = self.vals_unique.len();
        for j in 0..self.val_ind.len() {
            if self.val_ind.get(j) >= uv {
                return Err(SparseError::InvalidFormat(format!(
                    "value index {} at element {j} exceeds unique count {uv}",
                    self.val_ind.get(j)
                )));
            }
        }
        Ok(())
    }
}

impl<I: SpIndex, V: Scalar> crate::spmm::SpMm<V> for CsrVi<I, V> {
    fn spmm(&self, x: crate::DenseBlock<'_, V>, mut y: crate::DenseBlockMut<'_, V>) {
        let k = crate::spmm::assert_panel_shapes(self.nrows, self.ncols, &x, &y);
        spmv::spmm_rows(self, crate::simd::selected(), 0, self.nrows, 0, x.data(), k, y.data_mut());
    }
}

#[cfg(test)]
mod tests;
