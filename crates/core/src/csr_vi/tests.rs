//! CSR-VI unit tests, including the paper's Fig. 4 worked example.

use super::*;
use crate::coo::Coo;
use crate::examples::paper_matrix;
use crate::spmv::SpMv;

fn vi_paper() -> CsrVi<u32, f64> {
    CsrVi::from_csr(&paper_matrix().to_csr())
}

/// Fig. 4 of the paper: the value-indexing structure for the Fig. 1 matrix.
/// vals_unique holds each distinct value once in first-occurrence order and
/// val_ind maps every non-zero to its slot.
#[test]
fn paper_fig4() {
    let vi = vi_paper();
    // values: 5.4 1.1 6.3 7.7 8.8 1.1 2.9 3.7 2.9 9.0 1.1 4.5 1.1 2.9 3.7 1.1
    assert_eq!(vi.vals_unique(), &[5.4, 1.1, 6.3, 7.7, 8.8, 2.9, 3.7, 9.0, 4.5]);
    assert_eq!(vi.unique_values(), 9);
    let ind: Vec<usize> = (0..16).map(|j| vi.val_ind().get(j)).collect();
    assert_eq!(ind, vec![0, 1, 2, 3, 4, 1, 5, 6, 5, 7, 1, 8, 1, 5, 6, 1]);
    // 9 unique values fit in u8 indices.
    assert_eq!(vi.val_ind().width_bytes(), 1);
}

#[test]
fn roundtrip_paper_matrix() {
    let csr = paper_matrix().to_csr();
    let vi = CsrVi::from_csr(&csr);
    assert_eq!(vi.to_csr().unwrap(), csr);
}

#[test]
fn spmv_matches_csr_bit_exact() {
    let csr = paper_matrix().to_csr();
    let vi = CsrVi::from_csr(&csr);
    let x: Vec<f64> = (0..6).map(|i| 1.0 / (1.0 + i as f64)).collect();
    let mut y0 = vec![0.0; 6];
    let mut y1 = vec![1.0; 6];
    csr.spmv(&x, &mut y0);
    vi.spmv(&x, &mut y1);
    assert_eq!(y0, y1);
}

#[test]
fn ttu_and_profitability() {
    let vi = vi_paper();
    assert!((vi.ttu() - 16.0 / 9.0).abs() < 1e-12);
    assert!(!vi.is_profitable(), "ttu {} <= 5 must not be profitable", vi.ttu());

    // A matrix with 2 unique values over 100 nnz: ttu = 50 > 5.
    let coo = Coo::from_triplets(
        10,
        10,
        (0..100).map(|k| (k / 10, k % 10, if k % 2 == 0 { 1.0 } else { 2.0 })),
    )
    .unwrap();
    let vi = CsrVi::from_csr(&coo.to_csr());
    assert_eq!(vi.unique_values(), 2);
    assert!(vi.is_profitable());
}

#[test]
fn width_escalates_with_unique_count() {
    // 300 unique values -> u16 indices.
    let coo = Coo::from_triplets(1, 300, (0..300).map(|c| (0usize, c, c as f64))).unwrap();
    let vi = CsrVi::from_csr(&coo.to_csr());
    assert_eq!(vi.unique_values(), 300);
    assert_eq!(vi.val_ind().width_bytes(), 2);
    assert_eq!(vi.to_csr().unwrap(), coo.to_csr());
}

#[test]
fn exactly_256_unique_values_stay_u8() {
    let coo = Coo::from_triplets(1, 256, (0..256).map(|c| (0usize, c, c as f64))).unwrap();
    let vi = CsrVi::from_csr(&coo.to_csr());
    assert_eq!(vi.unique_values(), 256);
    assert_eq!(vi.val_ind().width_bytes(), 1, "256 values are addressable by u8");
}

#[test]
fn zero_and_negative_zero_are_distinct() {
    let coo = Coo::from_triplets(1, 2, vec![(0, 0, 0.0), (0, 1, -0.0)]).unwrap();
    let vi = CsrVi::from_csr(&coo.to_csr());
    assert_eq!(vi.unique_values(), 2);
}

#[test]
fn size_reduction_with_few_values() {
    // 100k nnz, 3 unique values: value data shrinks 8B -> 1B per element.
    let coo = Coo::from_triplets(
        1000,
        1000,
        (0..100_000).map(|k| (k / 100, (k * 17 + k / 100) % 1000, [1.0, 2.0, 3.0][k % 3])),
    )
    .unwrap();
    let mut c = coo;
    c.canonicalize();
    let csr = c.to_csr();
    let vi = CsrVi::from_csr(&csr);
    let report = vi.size_report();
    // CSR: 12 B/nnz (+row_ptr); CSR-VI: 5 B/nnz (+row_ptr +table).
    assert!(report.reduction() > 0.5, "reduction {}", report.reduction());
    assert!(vi.size_bytes() < csr.size_bytes());
}

#[test]
fn spmv_rows_partitioned_matches_full() {
    let csr = paper_matrix().to_csr();
    let vi = CsrVi::from_csr(&csr);
    let x = vec![0.5; 6];
    let mut y_full = vec![0.0; 6];
    vi.spmv(&x, &mut y_full);
    let mut y_parts = vec![9.0; 6];
    vi.spmv_rows(0, 2, &x, &mut y_parts);
    vi.spmv_rows(2, 5, &x, &mut y_parts);
    vi.spmv_rows(5, 6, &x, &mut y_parts);
    assert_eq!(y_parts, y_full);
}

#[test]
fn empty_matrix() {
    let coo: Coo<f64> = Coo::new(3, 3);
    let vi = CsrVi::from_csr(&coo.to_csr());
    assert_eq!(vi.nnz(), 0);
    assert_eq!(vi.unique_values(), 0);
    assert_eq!(vi.ttu(), 0.0);
    let mut y = vec![5.0; 3];
    vi.spmv(&[1.0; 3], &mut y);
    assert_eq!(y, vec![0.0; 3]);
}

#[test]
fn u16_structure_indices_supported() {
    let coo = paper_matrix();
    let csr = coo.to_csr_with_index::<u16>().unwrap();
    let vi = CsrVi::from_csr(&csr);
    let mut y = vec![0.0; 6];
    let mut y_ref = vec![0.0; 6];
    vi.spmv(&[1.0; 6], &mut y);
    coo.spmv_reference(&[1.0; 6], &mut y_ref);
    assert_eq!(y, y_ref);
}

// ---------------------------------------------------------------------
// Canonical-bit-pattern deduplication pins (untrusted-input hardening):
// NaN payloads must not explode the unique table, and -0.0/+0.0 must not
// be conflated into a result-changing value.
// ---------------------------------------------------------------------

#[test]
fn nan_payloads_collapse_to_one_table_slot() {
    // 100 NaNs with distinct payload bits plus one real value. Without
    // canonicalization the unique table would hold 101 entries.
    let n = 100usize;
    let triplets: Vec<(usize, usize, f64)> = (0..n)
        .map(|i| (0usize, i, f64::from_bits(0x7FF8_0000_0000_0001 + i as u64)))
        .chain(std::iter::once((0usize, n, 2.5)))
        .collect();
    assert!(triplets.iter().take(n).all(|(_, _, v)| v.is_nan()));
    let csr: Csr<u32, f64> = Coo::from_triplets(1, n + 1, triplets).unwrap().to_csr();
    let vi = CsrVi::from_csr(&csr);
    assert_eq!(vi.unique_values(), 2, "all NaNs must share one canonical slot");
    // Every NaN element reconstructs as (some) NaN; the real value survives.
    let back = vi.to_csr().unwrap();
    assert!(back.values()[..n].iter().all(|v| v.is_nan()));
    assert_eq!(back.values()[n], 2.5);
    // The combined format uses the same dedup.
    let duvi = crate::csr_duvi::CsrDuVi::from_csr(&csr, &crate::csr_du::DuOptions::default());
    assert_eq!(duvi.unique_values(), 2);
}

#[test]
fn signed_zeros_stay_distinct() {
    let csr: Csr<u32, f64> =
        Coo::from_triplets(1, 2, vec![(0usize, 0usize, 0.0f64), (0, 1, -0.0)]).unwrap().to_csr();
    let vi = CsrVi::from_csr(&csr);
    assert_eq!(vi.unique_values(), 2, "-0.0 and +0.0 are different bit patterns");
    let back = vi.to_csr().unwrap();
    assert!(back.values()[0].is_sign_positive());
    assert!(back.values()[1].is_sign_negative());
    // The distinction is observable in arithmetic: 1/x differs.
    assert_eq!(1.0 / back.values()[0], f64::INFINITY);
    assert_eq!(1.0 / back.values()[1], f64::NEG_INFINITY);
}

#[test]
fn nan_spmv_still_propagates() {
    // A NaN entry must still poison exactly the rows it touches.
    let csr: Csr<u32, f64> =
        Coo::from_triplets(2, 2, vec![(0usize, 0usize, f64::NAN), (1, 1, 3.0)]).unwrap().to_csr();
    let vi = CsrVi::from_csr(&csr);
    let mut y = vec![0.0; 2];
    vi.spmv(&[1.0, 1.0], &mut y);
    assert!(y[0].is_nan());
    assert_eq!(y[1], 3.0);
}
