//! LEB128 variable-length integer encoding.
//!
//! CSR-DU stores the `ujmp` field (the column jump at the start of each
//! unit) as a variable-length integer, since most jumps are tiny but the
//! first unit of a row can jump by up to `ncols`. We use unsigned LEB128:
//! seven payload bits per byte, high bit set on continuation bytes.

/// Maximum encoded length of a `u64` in LEB128 bytes.
pub const MAX_VARINT_LEN: usize = 10;

/// Appends the LEB128 encoding of `value` to `buf`, returning the number of
/// bytes written.
#[inline]
pub fn write_varint(buf: &mut Vec<u8>, mut value: u64) -> usize {
    let mut n = 0;
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        n += 1;
        if value == 0 {
            buf.push(byte);
            return n;
        }
        buf.push(byte | 0x80);
    }
}

/// Decodes a LEB128 integer starting at `buf[*pos]`, advancing `*pos` past
/// it. Panics (debug) / wraps (release) on truncated input — the encoder and
/// decoder are always paired inside this crate, so corrupt streams indicate
/// an internal bug; the checked variant below is for external input.
#[inline(always)]
pub fn read_varint(buf: &[u8], pos: &mut usize) -> u64 {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = buf[*pos];
        *pos += 1;
        result |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return result;
        }
        shift += 7;
    }
}

/// Checked decode for untrusted input. Returns `None` on truncation or if
/// the encoding exceeds [`MAX_VARINT_LEN`] bytes (non-canonical / overflow).
pub fn try_read_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    for _ in 0..MAX_VARINT_LEN {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        result |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(result);
        }
        shift += 7;
    }
    None
}

/// Number of bytes the LEB128 encoding of `value` occupies.
#[inline]
pub fn varint_len(value: u64) -> usize {
    if value == 0 {
        return 1;
    }
    (64 - value.leading_zeros() as usize).div_ceil(7)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) {
        let mut buf = Vec::new();
        let n = write_varint(&mut buf, v);
        assert_eq!(n, buf.len());
        assert_eq!(n, varint_len(v), "varint_len mismatch for {v}");
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), v);
        assert_eq!(pos, buf.len());
        let mut pos = 0;
        assert_eq!(try_read_varint(&buf, &mut pos), Some(v));
    }

    #[test]
    fn roundtrip_boundaries() {
        for v in
            [0u64, 1, 0x7f, 0x80, 0x3fff, 0x4000, 0x1f_ffff, 0x20_0000, u32::MAX as u64, u64::MAX]
        {
            roundtrip(v);
        }
    }

    #[test]
    fn roundtrip_exhaustive_small() {
        for v in 0..100_000u64 {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), v);
        }
    }

    #[test]
    fn single_byte_values_encode_in_one_byte() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 127);
        assert_eq!(buf, vec![0x7f]);
    }

    #[test]
    fn truncated_input_detected() {
        let buf = vec![0x80u8, 0x80]; // endless continuation
        let mut pos = 0;
        assert_eq!(try_read_varint(&buf, &mut pos), None);
    }

    #[test]
    fn sequential_decode() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 5);
        write_varint(&mut buf, 300);
        write_varint(&mut buf, 0);
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), 5);
        assert_eq!(read_varint(&buf, &mut pos), 300);
        assert_eq!(read_varint(&buf, &mut pos), 0);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_len_max() {
        assert_eq!(varint_len(u64::MAX), MAX_VARINT_LEN);
    }
}
