//! Incremental row-by-row CSR construction.
//!
//! For streaming ingestion (file readers, generators) the COO detour costs
//! an extra sort and 24 bytes per entry of transient memory. `CsrBuilder`
//! assembles CSR directly when entries arrive in row-major order — O(nnz)
//! time, zero transient overhead.

use crate::csr::Csr;
use crate::error::{Result, SparseError};
use crate::index::SpIndex;
use crate::scalar::Scalar;

/// Builds a CSR matrix row by row.
///
/// Rows must be appended in increasing order (gaps allowed — they become
/// empty rows); columns within a row must be strictly increasing.
#[derive(Debug, Clone)]
pub struct CsrBuilder<I: SpIndex = u32, V: Scalar = f64> {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<I>,
    col_ind: Vec<I>,
    values: Vec<V>,
    current_row: usize,
    last_col: Option<usize>,
}

impl<I: SpIndex, V: Scalar> CsrBuilder<I, V> {
    /// Creates a builder for an `nrows x ncols` matrix with an nnz hint.
    pub fn new(nrows: usize, ncols: usize, nnz_hint: usize) -> Result<Self> {
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        row_ptr.push(I::from_usize(0)?);
        Ok(CsrBuilder {
            nrows,
            ncols,
            row_ptr,
            col_ind: Vec::with_capacity(nnz_hint),
            values: Vec::with_capacity(nnz_hint),
            current_row: 0,
            last_col: None,
        })
    }

    /// Appends one entry. `row` must be ≥ the last appended row; within a
    /// row, `col` must strictly increase.
    pub fn push(&mut self, row: usize, col: usize, value: V) -> Result<()> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        if row < self.current_row {
            return Err(SparseError::InvalidFormat(format!(
                "rows must be appended in order: got {row} after {}",
                self.current_row
            )));
        }
        if row > self.current_row {
            // Close intermediate rows.
            while self.current_row < row {
                self.row_ptr.push(I::from_usize(self.col_ind.len())?);
                self.current_row += 1;
            }
            self.last_col = None;
        }
        if let Some(last) = self.last_col {
            if col == last {
                return Err(SparseError::DuplicateEntry { row, col });
            }
            if col < last {
                return Err(SparseError::UnsortedIndices { row });
            }
        }
        self.col_ind.push(I::from_usize(col)?);
        self.values.push(value);
        self.last_col = Some(col);
        Ok(())
    }

    /// Appends a whole row from an iterator of `(col, value)` pairs.
    pub fn push_row(
        &mut self,
        row: usize,
        entries: impl IntoIterator<Item = (usize, V)>,
    ) -> Result<()> {
        for (c, v) in entries {
            self.push(row, c, v)?;
        }
        Ok(())
    }

    /// Entries appended so far.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Finalizes into a validated CSR matrix.
    pub fn finish(mut self) -> Result<Csr<I, V>> {
        while self.current_row < self.nrows {
            self.row_ptr.push(I::from_usize(self.col_ind.len())?);
            self.current_row += 1;
        }
        Csr::from_raw_parts(self.nrows, self.ncols, self.row_ptr, self.col_ind, self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::paper_matrix;

    #[test]
    fn builds_paper_matrix_identically() {
        let coo = paper_matrix();
        let expected = coo.to_csr();
        let mut b: CsrBuilder = CsrBuilder::new(6, 6, 16).unwrap();
        for &(r, c, v) in coo.entries() {
            b.push(r, c, v).unwrap();
        }
        assert_eq!(b.finish().unwrap(), expected);
    }

    #[test]
    fn gaps_become_empty_rows() {
        let mut b: CsrBuilder = CsrBuilder::new(5, 5, 2).unwrap();
        b.push(1, 2, 1.0).unwrap();
        b.push(4, 0, 2.0).unwrap();
        let csr = b.finish().unwrap();
        assert_eq!(csr.row_ptr(), &[0, 0, 1, 1, 1, 2]);
    }

    #[test]
    fn trailing_empty_rows_closed_by_finish() {
        let mut b: CsrBuilder = CsrBuilder::new(4, 4, 1).unwrap();
        b.push(0, 0, 1.0).unwrap();
        let csr = b.finish().unwrap();
        assert_eq!(csr.row_ptr().len(), 5);
        assert_eq!(csr.nnz(), 1);
    }

    #[test]
    fn rejects_out_of_order_rows_and_cols() {
        let mut b: CsrBuilder = CsrBuilder::new(4, 4, 4).unwrap();
        b.push(2, 1, 1.0).unwrap();
        assert!(matches!(b.push(1, 0, 1.0), Err(SparseError::InvalidFormat(_))));
        assert!(matches!(b.push(2, 1, 2.0), Err(SparseError::DuplicateEntry { .. })));
        assert!(matches!(b.push(2, 0, 2.0), Err(SparseError::UnsortedIndices { .. })));
    }

    #[test]
    fn rejects_out_of_bounds() {
        let mut b: CsrBuilder = CsrBuilder::new(2, 2, 1).unwrap();
        assert!(b.push(0, 5, 1.0).is_err());
        assert!(b.push(5, 0, 1.0).is_err());
    }

    #[test]
    fn push_row_convenience() {
        let mut b: CsrBuilder = CsrBuilder::new(2, 4, 4).unwrap();
        b.push_row(0, [(0, 1.0), (2, 2.0)]).unwrap();
        b.push_row(1, [(1, 3.0)]).unwrap();
        let csr = b.finish().unwrap();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.row_iter(0).collect::<Vec<_>>(), vec![(0, 1.0), (2, 2.0)]);
    }

    #[test]
    fn empty_builder_finishes() {
        let b: CsrBuilder = CsrBuilder::new(3, 3, 0).unwrap();
        let csr = b.finish().unwrap();
        assert_eq!(csr.nnz(), 0);
    }
}
