//! The [`SpMv`] trait — the common interface all storage formats implement —
//! and the [`FormatKind`] tag used by the benchmark harness.

use crate::error::SparseError;
use crate::scalar::Scalar;

/// Identifies a storage format, for reporting and dispatch in the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormatKind {
    /// Coordinate / triplet.
    Coo,
    /// Compressed Sparse Row (the paper's baseline).
    Csr,
    /// Compressed Sparse Column.
    Csc,
    /// Blocked CSR with fixed dense blocks.
    Bcsr,
    /// Ellpack-Itpack.
    Ell,
    /// Compressed Diagonal Storage.
    Dia,
    /// Jagged Diagonal.
    Jad,
    /// CSR Delta Unit — the paper's index-compressed format (§IV).
    CsrDu,
    /// CSR Value Index — the paper's value-compressed format (§V).
    CsrVi,
    /// Combined index + value compression (companion CF'08 paper).
    CsrDuVi,
    /// Willcock & Lumsdaine's delta-compressed CSR (related work, §III-B).
    Dcsr,
}

impl FormatKind {
    /// Human-readable name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            FormatKind::Coo => "COO",
            FormatKind::Csr => "CSR",
            FormatKind::Csc => "CSC",
            FormatKind::Bcsr => "BCSR",
            FormatKind::Ell => "ELL",
            FormatKind::Dia => "DIA",
            FormatKind::Jad => "JAD",
            FormatKind::CsrDu => "CSR-DU",
            FormatKind::CsrVi => "CSR-VI",
            FormatKind::CsrDuVi => "CSR-DU-VI",
            FormatKind::Dcsr => "DCSR",
        }
    }
}

impl std::fmt::Display for FormatKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Sparse matrix-vector multiplication: `y = A·x`.
///
/// All formats implement this trait; correctness tests check every
/// implementation against the COO reference oracle on the same pattern.
pub trait SpMv<V: Scalar = f64>: Send + Sync {
    /// Number of rows of `A` (length of `y`).
    fn nrows(&self) -> usize;
    /// Number of columns of `A` (length of `x`).
    fn ncols(&self) -> usize;
    /// Number of stored non-zeros.
    fn nnz(&self) -> usize;
    /// Which format this is.
    fn kind(&self) -> FormatKind;
    /// Bytes of matrix data (structure + values) streamed by one SpMV.
    fn size_bytes(&self) -> usize;

    /// Computes `y = A·x`. Panics if `x.len() != ncols` or
    /// `y.len() != nrows`. `y` is fully overwritten.
    fn spmv(&self, x: &[V], y: &mut [V]);

    /// Checks every structural invariant of the stored representation,
    /// returning the first violation as a precise [`SparseError`]
    /// (typically [`SparseError::InvalidFormat`],
    /// [`SparseError::MalformedPointers`],
    /// [`SparseError::IndexOutOfBounds`] or
    /// [`SparseError::UnsortedIndices`]).
    ///
    /// Constructors establish these invariants; `validate` re-proves them
    /// on demand, which matters in two places: after deserializing a
    /// container (the CRC pass catches transport corruption, this pass
    /// catches a well-checksummed but structurally bogus payload) and in
    /// `--verify` runs that guard against encoder bugs. A matrix whose
    /// `validate` returns `Ok` cannot make `spmv` read out of bounds.
    ///
    /// Cost is `O(size of the representation)` — one full scan, no
    /// allocation proportional to `nnz`.
    fn validate(&self) -> Result<(), SparseError>;

    /// Checked SpMV: returns [`SparseError::DimensionMismatch`] for
    /// wrong-length `x`/`y` instead of panicking. This is the entry point
    /// for callers handing in vectors from an untrusted or dynamic source
    /// (request payloads, deserialized state) — unlike `debug_assert!`s,
    /// the check cannot compile away in release builds.
    fn try_spmv(&self, x: &[V], y: &mut [V]) -> Result<(), SparseError> {
        if x.len() != self.ncols() {
            return Err(SparseError::DimensionMismatch(format!(
                "x length {} != ncols {} for {} SpMV",
                x.len(),
                self.ncols(),
                self.kind()
            )));
        }
        if y.len() != self.nrows() {
            return Err(SparseError::DimensionMismatch(format!(
                "y length {} != nrows {} for {} SpMV",
                y.len(),
                self.nrows(),
                self.kind()
            )));
        }
        self.spmv(x, y);
        Ok(())
    }

    /// Floating-point operations per multiplication (2 per non-zero:
    /// one multiply, one add) — the paper's FLOPS accounting (§VI-C).
    fn flops(&self) -> usize {
        2 * self.nnz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_paper_names() {
        assert_eq!(FormatKind::CsrDu.name(), "CSR-DU");
        assert_eq!(FormatKind::CsrVi.name(), "CSR-VI");
        assert_eq!(FormatKind::Csr.to_string(), "CSR");
    }

    #[test]
    fn flops_is_twice_nnz() {
        let csr: crate::Csr = crate::examples::paper_matrix().to_csr();
        assert_eq!(SpMv::<f64>::flops(&csr), 32);
    }

    #[test]
    fn try_spmv_checks_dimensions_on_every_format() {
        use crate::csr_du::{CsrDu, DuOptions};
        use crate::csr_duvi::CsrDuVi;
        use crate::csr_vi::CsrVi;

        let csr: crate::Csr = crate::examples::paper_matrix().to_csr();
        let formats: Vec<Box<dyn SpMv<f64>>> = vec![
            Box::new(csr.clone()),
            Box::new(CsrDu::from_csr(&csr, &DuOptions::default())),
            Box::new(CsrVi::from_csr(&csr)),
            Box::new(CsrDuVi::from_csr(&csr, &DuOptions::default())),
        ];
        let x = vec![1.0; 6];
        for m in &formats {
            // Wrong x length.
            let mut y = vec![0.0; 6];
            let err = m.try_spmv(&x[..5], &mut y).unwrap_err();
            assert!(matches!(err, crate::SparseError::DimensionMismatch(_)), "{}", m.kind());
            // Wrong y length.
            let mut y_short = vec![0.0; 5];
            assert!(m.try_spmv(&x, &mut y_short).is_err(), "{}", m.kind());
            // Correct lengths succeed and match the panicking entry point.
            let mut y_ref = vec![0.0; 6];
            m.spmv(&x, &mut y_ref);
            m.try_spmv(&x, &mut y).unwrap();
            assert_eq!(y, y_ref, "{}", m.kind());
        }
    }
}
