//! The [`SpMv`] trait — the common interface all storage formats implement —
//! and the [`FormatKind`] tag used by the benchmark harness.

use crate::scalar::Scalar;

/// Identifies a storage format, for reporting and dispatch in the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormatKind {
    /// Coordinate / triplet.
    Coo,
    /// Compressed Sparse Row (the paper's baseline).
    Csr,
    /// Compressed Sparse Column.
    Csc,
    /// Blocked CSR with fixed dense blocks.
    Bcsr,
    /// Ellpack-Itpack.
    Ell,
    /// Compressed Diagonal Storage.
    Dia,
    /// Jagged Diagonal.
    Jad,
    /// CSR Delta Unit — the paper's index-compressed format (§IV).
    CsrDu,
    /// CSR Value Index — the paper's value-compressed format (§V).
    CsrVi,
    /// Combined index + value compression (companion CF'08 paper).
    CsrDuVi,
    /// Willcock & Lumsdaine's delta-compressed CSR (related work, §III-B).
    Dcsr,
}

impl FormatKind {
    /// Human-readable name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            FormatKind::Coo => "COO",
            FormatKind::Csr => "CSR",
            FormatKind::Csc => "CSC",
            FormatKind::Bcsr => "BCSR",
            FormatKind::Ell => "ELL",
            FormatKind::Dia => "DIA",
            FormatKind::Jad => "JAD",
            FormatKind::CsrDu => "CSR-DU",
            FormatKind::CsrVi => "CSR-VI",
            FormatKind::CsrDuVi => "CSR-DU-VI",
            FormatKind::Dcsr => "DCSR",
        }
    }
}

impl std::fmt::Display for FormatKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Sparse matrix-vector multiplication: `y = A·x`.
///
/// All formats implement this trait; correctness tests check every
/// implementation against the COO reference oracle on the same pattern.
pub trait SpMv<V: Scalar = f64>: Send + Sync {
    /// Number of rows of `A` (length of `y`).
    fn nrows(&self) -> usize;
    /// Number of columns of `A` (length of `x`).
    fn ncols(&self) -> usize;
    /// Number of stored non-zeros.
    fn nnz(&self) -> usize;
    /// Which format this is.
    fn kind(&self) -> FormatKind;
    /// Bytes of matrix data (structure + values) streamed by one SpMV.
    fn size_bytes(&self) -> usize;

    /// Computes `y = A·x`. Panics if `x.len() != ncols` or
    /// `y.len() != nrows`. `y` is fully overwritten.
    fn spmv(&self, x: &[V], y: &mut [V]);

    /// Floating-point operations per multiplication (2 per non-zero:
    /// one multiply, one add) — the paper's FLOPS accounting (§VI-C).
    fn flops(&self) -> usize {
        2 * self.nnz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_paper_names() {
        assert_eq!(FormatKind::CsrDu.name(), "CSR-DU");
        assert_eq!(FormatKind::CsrVi.name(), "CSR-VI");
        assert_eq!(FormatKind::Csr.to_string(), "CSR");
    }

    #[test]
    fn flops_is_twice_nnz() {
        let csr: crate::Csr = crate::examples::paper_matrix().to_csr();
        assert_eq!(SpMv::<f64>::flops(&csr), 32);
    }
}
